//! Flat-decomposition SpMV over an arbitrary semiring.
//!
//! The merge SpMV of `mps-core` specializes (⊕, ⊗) = (+, ×); this is the
//! same three-phase structure — partition by fixed nonzero count, CTA
//! segmented reduce, carry update — generic over the semiring, which is
//! what turns one kernel into a BFS engine (∨, ∧), a label propagator
//! (min, min), or a shortest-path relaxation (min, +).

use mps_simt::block::binary_search_partition;
use mps_simt::grid::{launch_map_into, LaunchBuffers, LaunchConfig, LaunchStats};
use mps_simt::Device;
use mps_sparse::CsrMatrix;

/// An algebraic semiring over value type `T`.
pub trait Semiring: Sync {
    type T: Copy + Send + Sync + PartialEq;
    /// Additive identity (the ⊕ unit; also the "empty row" output).
    fn zero(&self) -> Self::T;
    /// ⊕ — combines partial results.
    fn add(&self, a: Self::T, b: Self::T) -> Self::T;
    /// ⊗ — combines a matrix entry with a vector entry.
    fn mul(&self, edge: f64, x: Self::T) -> Self::T;
}

/// The ordinary arithmetic semiring (+, ×) over f64.
pub struct PlusTimes;

impl Semiring for PlusTimes {
    type T = f64;
    fn zero(&self) -> f64 {
        0.0
    }
    fn add(&self, a: f64, b: f64) -> f64 {
        a + b
    }
    fn mul(&self, edge: f64, x: f64) -> f64 {
        edge * x
    }
}

/// Boolean (∨, ∧) over reachability flags.
pub struct BoolOrAnd;

impl Semiring for BoolOrAnd {
    type T = bool;
    fn zero(&self) -> bool {
        false
    }
    fn add(&self, a: bool, b: bool) -> bool {
        a || b
    }
    fn mul(&self, edge: f64, x: bool) -> bool {
        edge != 0.0 && x
    }
}

/// (min, min) over labels — one step of min-label propagation.
pub struct MinMin;

impl Semiring for MinMin {
    type T = u32;
    fn zero(&self) -> u32 {
        u32::MAX
    }
    fn add(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }
    fn mul(&self, _edge: f64, x: u32) -> u32 {
        x
    }
}

/// (min, +) over distances — one relaxation step of SSSP.
pub struct MinPlus;

impl Semiring for MinPlus {
    type T = f64;
    fn zero(&self) -> f64 {
        f64::INFINITY
    }
    fn add(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }
    fn mul(&self, edge: f64, x: f64) -> f64 {
        edge + x
    }
}

/// Reusable scratch for [`semiring_spmv_into`]: holds the launch staging
/// buffers and the fold list across calls, so level-synchronous algorithms
/// (BFS, label propagation) allocate nothing per step in steady state.
pub struct SemiringScratch<T> {
    bufs: LaunchBuffers<PerCta<T>>,
    outputs: Vec<PerCta<T>>,
    stats: LaunchStats,
    fold_bufs: LaunchBuffers<()>,
    fold_out: Vec<()>,
    fold_stats: LaunchStats,
    folded: Vec<(usize, T)>,
}

type PerCta<T> = (Vec<(usize, T)>, Option<(usize, T)>);

impl<T> SemiringScratch<T> {
    pub fn new() -> Self {
        SemiringScratch {
            bufs: LaunchBuffers::new(),
            outputs: Vec::new(),
            stats: LaunchStats::default(),
            fold_bufs: LaunchBuffers::new(),
            fold_out: Vec::new(),
            fold_stats: LaunchStats::default(),
            folded: Vec::new(),
        }
    }
}

impl<T> Default for SemiringScratch<T> {
    fn default() -> Self {
        SemiringScratch::new()
    }
}

/// y = A ⊗ x over the given semiring, with the merge-path flat
/// decomposition (fixed nonzeros per CTA, carries across boundaries).
/// Rows with no entries yield `ring.zero()`.
///
/// # Panics
/// Panics if `x.len() != a.num_cols`.
pub fn semiring_spmv<S: Semiring>(
    device: &Device,
    ring: &S,
    a: &CsrMatrix,
    x: &[S::T],
) -> (Vec<S::T>, LaunchStats) {
    let mut scratch = SemiringScratch::new();
    let mut y = Vec::new();
    semiring_spmv_into(device, ring, a, x, &mut y, &mut scratch);
    let mut stats = scratch.stats;
    stats.add(&scratch.fold_stats);
    (y, stats)
}

/// [`semiring_spmv`] writing into a caller-owned `y` and reusing `scratch`
/// across calls. Returns the launch's simulated time in milliseconds.
///
/// # Panics
/// Panics if `x.len() != a.num_cols`.
pub fn semiring_spmv_into<S: Semiring>(
    device: &Device,
    ring: &S,
    a: &CsrMatrix,
    x: &[S::T],
    y: &mut Vec<S::T>,
    scratch: &mut SemiringScratch<S::T>,
) -> f64 {
    assert_eq!(x.len(), a.num_cols, "x length must equal num_cols");
    let nnz = a.nnz();
    y.clear();
    y.resize(a.num_rows, ring.zero());
    if nnz == 0 {
        scratch.stats = LaunchStats::default();
        scratch.fold_stats = LaunchStats::default();
        return 0.0;
    }
    let nv = 896;
    let num_ctas = nnz.div_ceil(nv);
    let elem = std::mem::size_of::<S::T>().max(1);

    let offsets = &a.row_offsets;
    let cfg = LaunchConfig::new(num_ctas, 128);
    let body = |cta: &mut mps_simt::Cta| {
        let lo = cta.cta_id * nv;
        let hi = (lo + nv).min(nnz);
        let count = hi - lo;
        let row_lo = binary_search_partition(cta, offsets, lo);
        cta.read_coalesced(count, 4 + 8);
        cta.gather(a.col_idx[lo..hi].iter().map(|&c| c as usize), elem);
        cta.alu(3 * count as u64);
        cta.shmem(2 * count as u64);
        cta.sync();
        cta.sync();

        // Walk items, closing each finished row (empty rows close with the
        // ⊕ identity, which is a no-op when folded into y).
        let mut complete: Vec<(usize, S::T)> = Vec::new();
        let mut r = row_lo;
        let mut acc = ring.zero();
        for i in lo..hi {
            while offsets[r + 1] <= i {
                complete.push((r, acc));
                acc = ring.zero();
                r += 1;
            }
            acc = ring.add(acc, ring.mul(a.values[i], x[a.col_idx[i] as usize]));
        }
        let carry = Some((r, acc));
        cta.write_coalesced(complete.len(), elem);
        (complete, carry)
    };
    launch_map_into(
        device,
        "semiring_spmv",
        cfg,
        body,
        &mut scratch.bufs,
        &mut scratch.outputs,
        &mut scratch.stats,
    );

    // Fold completes and carries (⊕ is associative, so boundary partials
    // combine exactly as the sum semiring's carries do).
    scratch.folded.clear();
    for (complete, carry) in scratch.outputs.drain(..) {
        for (r, v) in complete {
            scratch.folded.push((r, v));
        }
        if let Some(c) = carry {
            scratch.folded.push(c);
        }
    }
    let SemiringScratch {
        folded,
        fold_bufs,
        fold_out,
        fold_stats,
        ..
    } = &mut *scratch;
    let folded: &Vec<(usize, S::T)> = folded;
    launch_map_into(
        device,
        "semiring_fold",
        LaunchConfig::new(1, 128),
        |cta| {
            cta.read_coalesced(folded.len(), elem + 4);
            cta.alu(folded.len() as u64);
            cta.scatter(folded.iter().map(|&(r, _)| r), elem);
        },
        fold_bufs,
        fold_out,
        fold_stats,
    );
    for &(r, v) in folded {
        y[r] = ring.add(y[r], v);
    }
    scratch.stats.sim_ms + scratch.fold_stats.sim_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::gen;
    use mps_sparse::ops::spmv_ref;

    fn dev() -> Device {
        Device::titan()
    }

    #[test]
    fn plus_times_matches_reference_spmv() {
        for m in [
            gen::stencil_5pt(12, 12),
            gen::random_uniform(300, 300, 5.0, 3.0, 1),
            gen::power_law(200, 200, 1, 1.5, 100, 2),
        ] {
            let x: Vec<f64> = (0..m.num_cols).map(|i| 1.0 + (i % 7) as f64).collect();
            let (y, _) = semiring_spmv(&dev(), &PlusTimes, &m, &x);
            let expect = spmv_ref(&m, &x);
            for (a, b) in y.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn bool_semiring_computes_one_hop_reachability() {
        let a = crate::adjacency_from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let mut x = vec![false; 5];
        x[0] = true;
        let (y, _) = semiring_spmv(&dev(), &BoolOrAnd, &a, &x);
        assert_eq!(y, vec![false, true, false, false, false]);
    }

    #[test]
    fn min_min_propagates_smallest_neighbour_label() {
        let a = crate::adjacency_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let labels = vec![3u32, 0, 9, 1];
        let (y, _) = semiring_spmv(&dev(), &MinMin, &a, &labels);
        // Each node sees the min of its neighbours' labels.
        assert_eq!(y, vec![0, 3, 0, 9]);
    }

    #[test]
    fn min_plus_relaxes_distances() {
        // Path 0-1-2 with unit edges.
        let a = crate::adjacency_from_edges(3, &[(0, 1), (1, 2)]);
        let d = vec![0.0, f64::INFINITY, f64::INFINITY];
        let (d1, _) = semiring_spmv(&dev(), &MinPlus, &a, &d);
        assert_eq!(d1[1], 1.0);
        assert!(d1[2].is_infinite());
    }

    #[test]
    fn empty_rows_yield_zero_element() {
        let a = mps_sparse::CooMatrix::from_triplets(3, 3, [(0, 1, 1.0)]).to_csr();
        let (y, _) = semiring_spmv(&dev(), &MinMin, &a, &[5, 7, 9]);
        assert_eq!(y, vec![7, u32::MAX, u32::MAX]);
    }
}
