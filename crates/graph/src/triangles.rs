//! Triangle counting: SpGEMM plus balanced-path intersection.
//!
//! tr(A³)/6 organized as C = A·A followed by a set *intersection* of C's
//! coordinates with A's edge set — the non-union set operation the paper's
//! balanced-path extension enables (Section III-B).

use mps_core::{merge_spgemm, SpgemmConfig};
use mps_merge::set_ops::{set_op_pairs, SetOp};
use mps_simt::Device;
use mps_sparse::{pack_key, CsrMatrix};

/// Packed (row,col) keys of a CSR matrix, with its values.
fn coo_keys(m: &CsrMatrix) -> (Vec<u64>, Vec<f64>) {
    let mut keys = Vec::with_capacity(m.nnz());
    for r in 0..m.num_rows {
        for &c in m.row_cols(r) {
            keys.push(pack_key(r as u32, c));
        }
    }
    (keys, m.values.clone())
}

/// Count triangles in an undirected unit-weight adjacency matrix.
/// Returns the count and the total simulated device time in ms.
///
/// # Panics
/// Panics if the adjacency is not square.
pub fn count_triangles(device: &Device, graph: &CsrMatrix) -> (u64, f64) {
    assert_eq!(
        graph.num_rows, graph.num_cols,
        "triangles need a square adjacency"
    );
    let gemm = merge_spgemm(device, graph, graph, &SpgemmConfig::default());
    let mut sim_ms = gemm.sim_ms();
    let (ck, cv) = coo_keys(&gemm.c);
    let (ak, av) = coo_keys(graph);
    let (_, matched, stats) = set_op_pairs(
        device,
        SetOp::Intersection,
        &ck,
        &cv,
        &ak,
        &av,
        |c, _| c,
        1024,
    );
    sim_ms += stats.sim_ms();
    let paths: f64 = matched.iter().sum();
    ((paths / 6.0).round() as u64, sim_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency_from_edges;

    fn dev() -> Device {
        Device::titan()
    }

    #[test]
    fn single_triangle() {
        let g = adjacency_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(count_triangles(&dev(), &g).0, 1);
    }

    #[test]
    fn square_has_no_triangles() {
        let g = adjacency_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(count_triangles(&dev(), &g).0, 0);
    }

    #[test]
    fn complete_graph_count() {
        // K5 has C(5,3) = 10 triangles.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = adjacency_from_edges(5, &edges);
        assert_eq!(count_triangles(&dev(), &g).0, 10);
    }

    #[test]
    fn two_disjoint_triangles() {
        let g = adjacency_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert_eq!(count_triangles(&dev(), &g).0, 2);
    }
}
