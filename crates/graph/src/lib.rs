//! # mps-graph — graph analytics on the merge-path kernels
//!
//! The paper frames its contribution as "segmentation oblivious methods to
//! process *general reductions* on sparse matrices". This crate takes that
//! literally: a [`semiring`] SpMV with the same flat nonzero-per-CTA
//! decomposition, instantiated for the classic graph semirings, plus the
//! algorithms built on them:
//!
//! * [`semiring`] — flat-decomposition SpMV over any (⊕, ⊗) semiring;
//! * [`bfs`] — level-synchronous breadth-first search (boolean semiring);
//! * [`components`] — connected components by min-label propagation
//!   (min-min semiring);
//! * [`pagerank`](mod@pagerank) — damped power iteration (ordinary (+, ×) via the
//!   merge SpMV), plus batched multi-source personalized PageRank over one
//!   merge SpMM per step;
//! * [`triangles`] — triangle counting: SpGEMM + balanced-path
//!   intersection (the paper's set-operation extension at work);
//! * [`stream`] — sliding-window PageRank over an evolving edge stream,
//!   driven through the serving layer's pattern-delta mutation API.

pub mod bfs;
pub mod components;
pub mod pagerank;
pub mod semiring;
pub mod stream;
pub mod triangles;

pub use bfs::bfs_levels;
pub use components::connected_components;
pub use pagerank::{
    pagerank, pagerank_multi, pagerank_multi_with_engine, MultiPageRankResult, PageRankResult,
};
pub use semiring::{semiring_spmv, Semiring};
pub use stream::{edge_stream, sliding_pagerank, RoundReport, StreamConfig, StreamReport};
pub use triangles::count_triangles;

use mps_sparse::{CooMatrix, CsrMatrix};

/// Build a simple undirected graph's 0/1 adjacency matrix from an edge
/// list (self-loops dropped, duplicates collapsed).
pub fn adjacency_from_edges(nodes: usize, edges: &[(u32, u32)]) -> CsrMatrix {
    let mut coo = CooMatrix::new(nodes, nodes);
    for &(u, v) in edges {
        if u != v {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
    }
    coo.canonicalize();
    let mut csr = coo.to_csr();
    for val in &mut csr.values {
        *val = 1.0;
    }
    csr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_is_symmetric_and_unit_weighted() {
        let a = adjacency_from_edges(4, &[(0, 1), (1, 0), (1, 2), (3, 3)]);
        assert_eq!(a.nnz(), 4); // (0,1),(1,0),(1,2),(2,1); self-loop dropped
        assert!(mps_sparse::ops::is_symmetric(&a));
        assert!(a.values.iter().all(|&v| v == 1.0));
    }
}
