//! Sliding-window PageRank over an evolving edge stream.
//!
//! The streaming-graph workload the mutation API exists for: a window of
//! recent edges defines the graph, each round the window slides, and the
//! ranks are recomputed on the mutated transition matrix. Rather than
//! rebuilding CSR + plans per round, the round's structural churn is
//! expressed as a [`CsrDelta`] between consecutive transition operators
//! and pushed through [`Service::submit_delta`]: the service patches the
//! registered matrix with one balanced-path union pass (or falls back to
//! a rebuild past the engine's threshold) and every power-iteration step
//! submits through the sharded service against the current snapshot.
//!
//! With a *cyclic* stream the window patterns repeat, so after one warm
//! cycle every transition pattern's SpMV plan is cached on its owning
//! shard and steady-state rounds are 100% cache-hit: the only per-round
//! structure cost is the delta union itself.

use std::sync::Arc;

use mps_core::CsrDelta;
use mps_engine::{EngineError, MatrixHandle, Service, TenantId};
use mps_sparse::CsrMatrix;

use crate::adjacency_from_edges;
use crate::pagerank::transition_transpose;

/// Shape of the sliding-window computation.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Vertices in the graph (fixed; only edges evolve).
    pub nodes: usize,
    /// Edges a window holds.
    pub window: usize,
    /// Edges the window advances per round.
    pub stride: usize,
    pub damping: f64,
    pub tolerance: f64,
    /// Power-iteration cap per round.
    pub max_iterations: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            nodes: 64,
            window: 96,
            stride: 16,
            damping: 0.85,
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

/// What one round of the stream did.
#[derive(Debug, Clone, Copy)]
pub struct RoundReport {
    pub round: usize,
    /// Delta entries submitted (0 on the first round and on a no-op slide).
    pub delta_len: usize,
    pub inserted: usize,
    pub updated: usize,
    pub removed: usize,
    /// Whether the delta fell back to a full rebuild
    /// ([`mps_engine::EngineConfig::delta_replan_threshold`]).
    pub fallback: bool,
    pub pattern_changed: bool,
    pub iterations: usize,
    pub converged: bool,
    /// Highest-ranked vertex after this round.
    pub top_vertex: usize,
}

/// Result of a [`sliding_pagerank`] run.
#[derive(Debug, Clone)]
pub struct StreamReport {
    pub rounds: Vec<RoundReport>,
    /// Scores after the final round.
    pub final_scores: Vec<f64>,
    /// Handle to the evolving transition matrix (still registered; the
    /// caller can keep mutating or read the final snapshot).
    pub handle: MatrixHandle,
}

/// Deterministic pseudo-random edge stream (SplitMix64 endpoints,
/// self-loops excluded). Cycle it (`edges.iter().cycle()`) to build a
/// periodic stream whose window patterns repeat.
pub fn edge_stream(nodes: usize, len: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!(nodes >= 2, "an edge needs two distinct endpoints");
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..len)
        .map(|_| {
            let u = (next() % nodes as u64) as u32;
            let mut v = (next() % (nodes as u64 - 1)) as u32;
            if v >= u {
                v += 1;
            }
            (u, v)
        })
        .collect()
}

/// The column-stochastic operator and dangling mask for one window.
fn window_transition(nodes: usize, edges: &[(u32, u32)]) -> (CsrMatrix, Vec<bool>) {
    transition_transpose(&adjacency_from_edges(nodes, edges))
}

/// Run sliding-window PageRank over `edges` through a sharded [`Service`].
///
/// Round `k` ranks the window `edges[k·stride .. k·stride + window]`. The
/// first round registers the window's transition operator under a
/// tenant-scoped handle; every later round diffs the new operator against
/// the registered snapshot ([`CsrDelta::between`]) and advances the handle
/// with [`Service::submit_delta`], so the service-side matrix tracks the
/// ground truth bitwise. Power iteration submits one SpMV per step
/// against the current snapshot, routed by its pattern fingerprint.
///
/// # Panics
/// Panics if the stream is shorter than one window, `stride` is zero, or
/// the PageRank parameters are out of range.
pub fn sliding_pagerank(
    svc: &Service,
    tenant: TenantId,
    edges: &[(u32, u32)],
    cfg: &StreamConfig,
) -> Result<StreamReport, EngineError> {
    assert!(cfg.stride > 0, "stride must advance the window");
    assert!(
        edges.len() >= cfg.window && cfg.window > 0,
        "stream must cover at least one window"
    );
    assert!(
        cfg.damping > 0.0 && cfg.damping < 1.0,
        "damping must lie in (0, 1)"
    );
    let n = cfg.nodes;
    let rounds = (edges.len() - cfg.window) / cfg.stride + 1;

    let (t0, mut dangling) = window_transition(n, &edges[..cfg.window]);
    let handle = svc.register(tenant, &Arc::new(t0));

    let mut reports = Vec::with_capacity(rounds);
    let mut scores = vec![1.0 / n as f64; n];
    for round in 0..rounds {
        let lo = round * cfg.stride;
        let window = &edges[lo..lo + cfg.window];
        let (mut delta_len, mut inserted, mut updated, mut removed) = (0, 0, 0, 0);
        let (mut fallback, mut pattern_changed) = (false, false);
        if round > 0 {
            let (t_new, dang) = window_transition(n, window);
            dangling = dang;
            let snapshot = svc.matrix(handle)?;
            let d = CsrDelta::between(&snapshot, &t_new).map_err(EngineError::Plan)?;
            delta_len = d.len();
            if !d.is_empty() {
                let out = svc.submit_delta(tenant, handle, &d)?;
                (inserted, updated, removed) = (out.inserted, out.updated, out.removed);
                (fallback, pattern_changed) = (out.fallback, out.pattern_changed);
            }
        }
        let snapshot = svc.matrix(handle)?;
        // Warm-started damped power iteration: the previous round's ranks
        // seed this one, so a small slide converges in a few steps.
        let mut iterations = 0;
        let mut converged = false;
        while iterations < cfg.max_iterations {
            let ticket = svc.submit_spmv(tenant, &snapshot, scores.clone(), None)?;
            svc.flush();
            let mut y = svc.take_result(ticket)?.into_vector();
            let dangling_mass: f64 = scores
                .iter()
                .zip(&dangling)
                .filter(|(_, &d)| d)
                .map(|(ri, _)| ri)
                .sum();
            let base = (1.0 - cfg.damping) / n as f64 + cfg.damping * dangling_mass / n as f64;
            let mut l1 = 0.0;
            for (yi, ri) in y.iter_mut().zip(&scores) {
                *yi = base + cfg.damping * *yi;
                l1 += (*yi - ri).abs();
            }
            scores = y;
            iterations += 1;
            if l1 < cfg.tolerance {
                converged = true;
                break;
            }
        }
        let top_vertex = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        reports.push(RoundReport {
            round,
            delta_len,
            inserted,
            updated,
            removed,
            fallback,
            pattern_changed,
            iterations,
            converged,
            top_vertex,
        });
    }
    Ok(StreamReport {
        rounds: reports,
        final_scores: scores,
        handle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_simt::Device;

    fn svc() -> Service {
        Service::new(&Device::titan())
    }

    fn cfg() -> StreamConfig {
        StreamConfig {
            nodes: 48,
            window: 64,
            stride: 16,
            tolerance: 1e-9,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn rounds_slide_converge_and_conserve_mass() {
        let service = svc();
        let edges = edge_stream(48, 128, 7);
        let report = sliding_pagerank(&service, TenantId(0), &edges, &cfg()).expect("runs");
        assert_eq!(report.rounds.len(), (128 - 64) / 16 + 1);
        assert!(report.rounds.iter().all(|r| r.converged));
        assert_eq!(report.rounds[0].delta_len, 0, "first round registers");
        assert!(
            report.rounds[1..].iter().all(|r| r.delta_len > 0),
            "every slide mutates the operator"
        );
        let mass: f64 = report.final_scores.iter().sum();
        assert!((mass - 1.0).abs() < 1e-6, "mass {mass}");
    }

    #[test]
    fn service_snapshot_tracks_the_ground_truth_bitwise() {
        let service = svc();
        let edges = edge_stream(48, 112, 11);
        let c = cfg();
        let report = sliding_pagerank(&service, TenantId(0), &edges, &c).expect("runs");
        let last_lo = (report.rounds.len() - 1) * c.stride;
        let (want, _) = window_transition(c.nodes, &edges[last_lo..last_lo + c.window]);
        let got = service.matrix(report.handle).expect("still registered");
        assert_eq!(*got, want, "delta chain must reproduce the final window");
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&got.values), bits(&want.values));
    }

    #[test]
    fn cyclic_stream_is_all_cache_hits_after_one_warm_cycle() {
        let service = svc();
        let c = cfg();
        // Periodic stream: windows repeat with period 112/16 = 7 rounds.
        let base = edge_stream(48, 112, 3);
        let edges: Vec<(u32, u32)> = base.iter().copied().cycle().take(3 * 112).collect();
        // Warm one full period (including the windows that straddle the
        // cycle boundary): builds every distinct window pattern's plan.
        sliding_pagerank(&service, TenantId(0), &edges[..112 + c.window], &c).expect("warm");
        service.reset_stats();
        // Steady state: same patterns recur, so nothing replans.
        let report = sliding_pagerank(&service, TenantId(0), &edges, &c).expect("steady");
        assert!(report.rounds.iter().all(|r| r.converged));
        let s = service.stats();
        let agg = s.aggregate();
        assert_eq!(agg.cache_misses, 0, "steady state must replan nothing");
        assert!(agg.cache_hits > 0);
        assert!(agg.delta_applies + agg.delta_fallbacks > 0);
    }
}
