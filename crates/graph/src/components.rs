//! Connected components by min-label propagation.
//!
//! Every vertex starts labelled with its own id; each (min, min) semiring
//! SpMV replaces a label with the smallest label in the neighbourhood;
//! convergence leaves every component carrying its minimum vertex id.

use mps_simt::Device;
use mps_sparse::CsrMatrix;

use crate::semiring::{semiring_spmv, MinMin};

/// Component label (minimum member id) per vertex, plus simulated ms.
///
/// # Panics
/// Panics if the graph is not square.
pub fn connected_components(device: &Device, graph: &CsrMatrix) -> (Vec<u32>, f64) {
    assert_eq!(
        graph.num_rows, graph.num_cols,
        "CC needs a square adjacency"
    );
    let n = graph.num_rows;
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut sim_ms = 0.0;
    loop {
        let (neighbour_min, stats) = semiring_spmv(device, &MinMin, graph, &labels);
        sim_ms += stats.sim_ms;
        let mut changed = false;
        for v in 0..n {
            let candidate = neighbour_min[v].min(labels[v]);
            if candidate < labels[v] {
                labels[v] = candidate;
                changed = true;
            }
        }
        if !changed {
            return (labels, sim_ms);
        }
    }
}

/// Number of distinct components in a label array.
pub fn component_count(labels: &[u32]) -> usize {
    let mut sorted = labels.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency_from_edges;

    fn dev() -> Device {
        Device::titan()
    }

    #[test]
    fn two_cliques_and_an_isolate() {
        let g = adjacency_from_edges(7, &[(0, 1), (1, 2), (4, 5), (5, 6)]);
        let (labels, _) = connected_components(&dev(), &g);
        assert_eq!(labels, vec![0, 0, 0, 3, 4, 4, 4]);
        assert_eq!(component_count(&labels), 3);
    }

    #[test]
    fn single_ring_is_one_component() {
        let edges: Vec<(u32, u32)> = (0..50).map(|v| (v, (v + 1) % 50)).collect();
        let g = adjacency_from_edges(50, &edges);
        let (labels, _) = connected_components(&dev(), &g);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn empty_graph_is_all_singletons() {
        let g = CsrMatrix::zeros(6, 6);
        let (labels, ms) = connected_components(&dev(), &g);
        assert_eq!(labels, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(component_count(&labels), 6);
        assert_eq!(ms, 0.0);
    }

    #[test]
    fn component_labels_are_component_minima() {
        let g = adjacency_from_edges(8, &[(7, 3), (3, 5), (2, 6)]);
        let (labels, _) = connected_components(&dev(), &g);
        assert_eq!(labels[7], 3);
        assert_eq!(labels[5], 3);
        assert_eq!(labels[6], 2);
        assert_eq!(labels[0], 0);
    }
}
