//! Level-synchronous breadth-first search via the boolean semiring.
//!
//! Each level is one flat-decomposition SpMV over (∨, ∧): the frontier is
//! a boolean vector, the product is the set of neighbours, and newly
//! reached vertices receive the current depth. Power-law frontiers — the
//! case that wrecks row-wise GPU BFS — cost the flat kernel exactly their
//! nonzero count.

use mps_simt::Device;
use mps_sparse::CsrMatrix;

use crate::semiring::{semiring_spmv_into, BoolOrAnd, SemiringScratch};

/// BFS levels from `source` (unreached vertices get `u32::MAX`).
/// Returns the level array and the total simulated device time in ms.
///
/// # Panics
/// Panics if the graph is not square or `source` is out of range.
pub fn bfs_levels(device: &Device, graph: &CsrMatrix, source: usize) -> (Vec<u32>, f64) {
    assert_eq!(
        graph.num_rows, graph.num_cols,
        "BFS needs a square adjacency"
    );
    assert!(source < graph.num_rows, "source out of range");
    let n = graph.num_rows;
    let mut levels = vec![u32::MAX; n];
    levels[source] = 0;
    let mut frontier = vec![false; n];
    frontier[source] = true;
    let mut next = vec![false; n];
    let mut reached: Vec<bool> = Vec::new();
    let mut scratch = SemiringScratch::new();
    let mut sim_ms = 0.0;

    for depth in 1..=n as u32 {
        sim_ms += semiring_spmv_into(
            device,
            &BoolOrAnd,
            graph,
            &frontier,
            &mut reached,
            &mut scratch,
        );
        let mut any = false;
        for v in 0..n {
            next[v] = reached[v] && levels[v] == u32::MAX;
            if next[v] {
                levels[v] = depth;
                any = true;
            }
        }
        if !any {
            break;
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    (levels, sim_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency_from_edges;

    fn dev() -> Device {
        Device::titan()
    }

    #[test]
    fn path_graph_levels_are_distances() {
        let g = adjacency_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (levels, ms) = bfs_levels(&dev(), &g, 0);
        assert_eq!(levels, vec![0, 1, 2, 3, 4]);
        assert!(ms > 0.0);
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        let g = adjacency_from_edges(5, &[(0, 1), (3, 4)]);
        let (levels, _) = bfs_levels(&dev(), &g, 0);
        assert_eq!(levels, vec![0, 1, u32::MAX, u32::MAX, u32::MAX]);
    }

    #[test]
    fn star_graph_is_one_hop() {
        let edges: Vec<(u32, u32)> = (1..20).map(|v| (0u32, v)).collect();
        let g = adjacency_from_edges(20, &edges);
        let (levels, _) = bfs_levels(&dev(), &g, 0);
        assert_eq!(levels[0], 0);
        assert!(levels[1..].iter().all(|&l| l == 1));
    }

    #[test]
    fn bfs_matches_sequential_reference_on_random_graph() {
        let m = mps_sparse::gen::random_uniform(120, 120, 4.0, 2.0, 3);
        // Symmetrize.
        let mut edges = Vec::new();
        for r in 0..m.num_rows {
            for &c in m.row_cols(r) {
                edges.push((r as u32, c));
            }
        }
        let g = adjacency_from_edges(120, &edges);
        let (levels, _) = bfs_levels(&dev(), &g, 0);

        // Sequential BFS.
        let mut expect = vec![u32::MAX; 120];
        expect[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(v) = queue.pop_front() {
            for &w in g.row_cols(v) {
                if expect[w as usize] == u32::MAX {
                    expect[w as usize] = expect[v] + 1;
                    queue.push_back(w as usize);
                }
            }
        }
        assert_eq!(levels, expect);
    }
}
