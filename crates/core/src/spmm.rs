//! Merge-path SpMM: CSR × dense multi-vector (column-tiled).
//!
//! Extends the Section III-A flat decomposition from one dense vector to a
//! block of `k` column vectors (the operand shape of block-Krylov solvers
//! and batched PageRank). The design follows the row-major / column-tiled
//! decomposition popularized by Yang, Buluç and Owens for merge-based SpMM:
//!
//! * The **partition** phase is unchanged — boundaries depend only on the
//!   sparsity pattern and the tile size, never on how many output columns
//!   are produced. A plan builds one [`MergePartition`] and re-walks the
//!   identical CTA boundaries for every column tile.
//! * The **reduction** phase processes a tile of `TILE_K` output columns
//!   per launch: each nonzero gathers a contiguous `TILE_K`-wide run of the
//!   operand block's row (row-major [`DenseBlock`] layout) instead of one
//!   scalar, and the CTA-wide segmented scan carries `TILE_K` partial sums
//!   per segment. A's column indices and values are streamed once per tile
//!   rather than once per column.
//! * The **update** phase folds `TILE_K`-wide carries into `Y` with wide
//!   scatters.
//!
//! The payoff over `k` independent SpMVs is twofold and the cost model sees
//! both: A's CSR arrays are read `⌈k / TILE_K⌉` times instead of `k` times,
//! and the operand gathers are *wide* — one nonzero's `TILE_K` doubles span
//! a handful of 128-byte segments, where `k` scalar gathers of the same
//! data pay a transaction each (see `Cta::gather_wide` and the
//! `dram_wide_bytes` counter).
//!
//! **Plan/execute split.** Exactly as for [`crate::spmv::SpmvPlan`]: every
//! launch cost is structure-only, charged once at [`SpmmPlan::new`], and
//! [`SpmmPlan::execute_into`] is a pure flat loop that reproduces, column
//! by column, the bitwise floating-point summation order of the planned
//! SpMV — column `c` of the product equals `SpmvPlan::execute` on column
//! `c` of the operand, bit for bit.

use mps_simt::block::block_segmented_reduce;
use mps_simt::grid::{launch_map_into_phased, LaunchBuffers, LaunchConfig, LaunchStats};
use mps_simt::{Device, Phase};
use mps_sparse::{CsrMatrix, DenseBlock};

use crate::config::SpmmConfig;
use crate::error::PlanError;
use crate::partition::MergePartition;
use crate::simd::{dot_gather_strided_impl, seg_dot_impl};
use crate::spmv::{charge_exchange, spmv_segment_walk};
use crate::workspace::Workspace;

/// Column tiles of a `k`-wide block at width `tile`: `(first_col, width)`.
fn column_tiles(k: usize, tile: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..k)
        .step_by(tile)
        .map(move |col0| (col0, tile.min(k - col0)))
}

/// Result of a merge SpMM: the product block plus per-phase simulated cost.
#[derive(Debug, Clone)]
pub struct SpmmResult {
    pub y: DenseBlock,
    pub partition: LaunchStats,
    pub reduction: LaunchStats,
    pub update: LaunchStats,
    /// Whether the adaptive empty-row compaction path ran.
    pub compacted: bool,
}

impl SpmmResult {
    /// Total simulated kernel time in milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.partition.sim_ms + self.reduction.sim_ms + self.update.sim_ms
    }

    /// Achieved double-precision GFLOP/s under simulated time, counting
    /// 2·nnz·k flops.
    pub fn gflops(&self, nnz: usize, k: usize) -> f64 {
        if self.sim_ms() == 0.0 {
            return 0.0;
        }
        2.0 * nnz as f64 * k as f64 / (self.sim_ms() * 1e-3) / 1e9
    }
}

/// Precomputed SpMM state for a fixed matrix and block width `k`: the
/// shared merge-path partition plus the cached simulated cost of the
/// per-tile reduction/update launches.
///
/// Block solvers apply the same operator to the same `k` right-hand sides
/// every iteration, so the plan charges the full tiled pipeline once —
/// `⌈k / TILE_K⌉` reduction/update launch pairs, staged through one reused
/// [`LaunchBuffers`] — and each [`SpmmPlan::execute_into`] afterwards is
/// flat numeric work with no allocation in steady state.
#[derive(Debug, Clone)]
pub struct SpmmPlan {
    cfg: SpmmConfig,
    k: usize,
    num_cols: usize,
    /// Shared merge-path partition (phase 1), reused by every tile.
    part: MergePartition,
    /// Cost of the partition boundary searches, paid at plan build.
    pub partition: LaunchStats,
    /// Cost of the empty-row compaction pass (zero on the raw path), paid
    /// at plan build alongside the partition.
    pub fixup: LaunchStats,
    /// Cached cost of all reduction-phase tile launches.
    reduction: LaunchStats,
    /// Cached cost of all update-phase tile launches.
    update: LaunchStats,
    /// Physical rows the walk never assigns (empty or carry-only); the
    /// executor zeroes exactly these rows of `y` instead of the whole
    /// block.
    prezero: Vec<u32>,
}

impl SpmmPlan {
    /// Non-panicking [`SpmmPlan::new`]: validates the configuration and
    /// returns [`PlanError`] instead of asserting.
    pub fn try_new(
        device: &Device,
        a: &CsrMatrix,
        k: usize,
        cfg: &SpmmConfig,
    ) -> Result<SpmmPlan, PlanError> {
        if cfg.block_threads == 0 {
            return Err(PlanError::InvalidConfig("block_threads must be nonzero"));
        }
        if cfg.items_per_thread == 0 {
            return Err(PlanError::InvalidConfig("items_per_thread must be nonzero"));
        }
        if cfg.tile_k == 0 {
            return Err(PlanError::InvalidConfig("tile_k must be nonzero"));
        }
        Ok(SpmmPlan::new(device, a, k, cfg))
    }

    /// Build the partition for `a` and charge the value-independent cost of
    /// the tiled reduction/update phases for a `k`-column operand block.
    pub fn new(device: &Device, a: &CsrMatrix, k: usize, cfg: &SpmmConfig) -> SpmmPlan {
        let mut part = MergePartition::build(device, a, cfg.nv(), cfg.force_no_compaction);
        let partition = std::mem::take(&mut part.stats);
        let fixup = std::mem::take(&mut part.fixup);
        let prezero = part.unassigned_physical_rows();
        let mut plan = SpmmPlan {
            cfg: *cfg,
            k,
            num_cols: a.num_cols,
            part,
            partition,
            fixup,
            reduction: LaunchStats::default(),
            update: LaunchStats::default(),
            prezero,
        };
        if plan.part.nnz > 0 && k > 0 {
            plan.charge_tiled_phases(device, a);
        }
        plan
    }

    /// Block width the plan was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of column tiles per execution.
    pub fn num_tiles(&self) -> usize {
        self.k.div_ceil(self.cfg.tile())
    }

    /// Whether the adaptive empty-row compaction path ran.
    pub fn compacted(&self) -> bool {
        self.part.compacted()
    }

    /// The shared merge-path partition underlying this plan.
    pub fn partition_structure(&self) -> &MergePartition {
        &self.part
    }

    /// Cached simulated cost of the reduction-phase tile launches.
    pub fn reduction_stats(&self) -> &LaunchStats {
        &self.reduction
    }

    /// Cached simulated cost of the update-phase tile launches.
    pub fn update_stats(&self) -> &LaunchStats {
        &self.update
    }

    /// Simulated milliseconds of one planned execution (all tiles'
    /// reduction + update launches).
    pub fn execute_sim_ms(&self) -> f64 {
        self.reduction.sim_ms + self.update.sim_ms
    }

    /// Simulated milliseconds paid once at plan build (partition searches
    /// plus any empty-row compaction).
    pub fn build_sim_ms(&self) -> f64 {
        self.partition.sim_ms + self.fixup.sim_ms
    }

    /// Simulate one reduction/update launch pair per column tile, staging
    /// every launch through the same [`LaunchBuffers`]. The numeric outputs
    /// are discarded — only the cost survives in the plan.
    fn charge_tiled_phases(&mut self, device: &Device, a: &CsrMatrix) {
        let nnz = self.part.nnz;
        let nv = self.cfg.nv();
        let k = self.k;
        let num_ctas = self.part.num_ctas();
        let part = &self.part;
        let offsets = &self.part.offsets;

        let mut reduce_bufs: LaunchBuffers<Option<usize>> = LaunchBuffers::new();
        let mut update_bufs: LaunchBuffers<()> = LaunchBuffers::new();
        let mut carry_opts: Vec<Option<usize>> = Vec::new();
        let mut unit_out: Vec<()> = Vec::new();
        let mut carry_rows: Vec<usize> = Vec::new();
        let mut tile_stats = LaunchStats::default();
        let mut reduction = LaunchStats::default();
        let mut update = LaunchStats::default();

        for (col0, w) in column_tiles(k, self.cfg.tile()) {
            // ---- Phase 2: reduction over one column tile ----------------
            let cfg_red = LaunchConfig::new(num_ctas, self.cfg.block_threads);
            launch_map_into_phased(
                device,
                "spmm_reduce",
                Phase::TileTraversal,
                cfg_red,
                |cta| {
                    let lo = cta.cta_id * nv;
                    let hi = (lo + nv).min(nnz);
                    let count = hi - lo;
                    let (row_lo, row_hi) = part.cta_row_range(cta.cta_id);

                    // Row offsets for the CTA's rows into shared memory.
                    cta.read_coalesced(row_hi - row_lo + 2, 8);
                    cta.shmem((row_hi - row_lo + 2) as u64);

                    // A's column indices and values, streamed once per tile
                    // (this is the traffic k independent SpMVs pay k times).
                    cta.read_coalesced(count, 4);
                    cta.read_coalesced(count, 8);

                    // Wide gather of operand rows: each nonzero loads a
                    // contiguous w-wide run of X's row-major storage.
                    cta.gather_wide(
                        a.col_idx[lo..hi].iter().map(|&c| c as usize * k + col0),
                        8,
                        w,
                    );

                    // One multiply per nonzero per column slot.
                    cta.alu((count * w) as u64);

                    // Expand logical row ids by walking the shared offsets.
                    let mut rows = Vec::with_capacity(count);
                    let mut r = row_lo;
                    cta.alu(count as u64);
                    for item in lo..hi {
                        while r < row_hi && offsets[r + 1] <= item {
                            r += 1;
                        }
                        rows.push(r);
                    }

                    // Striped→blocked exchange of the row-id tile plus the
                    // w-wide product tile.
                    charge_exchange(cta, (1 + w) * count);

                    // Segmented scan: the base routine prices one value
                    // lane; the remaining w-1 lanes share the segment
                    // bookkeeping and add only their adds and staging.
                    let zeros = vec![0.0f64; count];
                    let seg = block_segmented_reduce(cta, &zeros, &rows);
                    cta.alu((3 * count * (w - 1)) as u64);
                    cta.shmem((2 * count * (w - 1)) as u64);

                    // Complete rows store w consecutive doubles each.
                    cta.scatter_wide(
                        seg.complete
                            .iter()
                            .map(|&(row, _)| part.to_physical(row) * k + col0),
                        8,
                        w,
                    );
                    seg.carry.map(|(row, _)| row)
                },
                &mut reduce_bufs,
                &mut carry_opts,
                &mut tile_stats,
            );
            reduction.add(&tile_stats);

            carry_rows.clear();
            carry_rows.extend(carry_opts.iter().flatten());

            // ---- Phase 3: update over the tile's carries ----------------
            let carries_ref = &carry_rows;
            let cfg_upd = LaunchConfig::new(1, self.cfg.block_threads);
            launch_map_into_phased(
                device,
                "spmm_update",
                Phase::TileTraversal,
                cfg_upd,
                |cta| {
                    cta.read_coalesced(carries_ref.len(), 4);
                    cta.read_coalesced(carries_ref.len() * w, 8);
                    cta.alu((2 * carries_ref.len() * w) as u64);
                    cta.scatter_wide(
                        carries_ref
                            .iter()
                            .map(|&row| part.to_physical(row) * k + col0),
                        8,
                        w,
                    );
                },
                &mut update_bufs,
                &mut unit_out,
                &mut tile_stats,
            );
            update.add(&tile_stats);
        }

        self.reduction = reduction;
        self.update = update;
    }

    /// The numeric phases as pure flat loops, tile by tile. Within a tile
    /// each CTA runs the fused product-and-segmented-sum with a `w`-wide
    /// accumulator; per column slot the floating-point op sequence is
    /// exactly [`crate::spmv::SpmvPlan`]'s (products in item order within
    /// each row segment, complete rows assigned, trailing partials folded
    /// as carries in CTA order), so every column of the result is bitwise
    /// identical to a planned SpMV on that operand column.
    fn numeric_execute(
        &self,
        a: &CsrMatrix,
        x: &DenseBlock,
        y: &mut DenseBlock,
        acc: &mut Vec<f64>,
        carries: &mut Vec<(usize, f64)>,
    ) {
        if y.rows != self.part.num_rows || y.cols != self.k {
            // Cold or resized buffer: full zero-fill.
            y.reset(self.part.num_rows, self.k);
        } else {
            // Warm buffer: zero only the rows the walk below will not
            // assign (empty rows and carry-only rows, precomputed at plan
            // build); every other row is overwritten by complete-segment
            // assignments across the column passes, so the result is
            // identical to a full zero-fill without streaming the whole
            // `n × k` block twice per execution.
            if self.k == 1 {
                // Degenerate single-column block: same store pattern as
                // `SpmvPlan` (no slice construction per row).
                for &r in self.prezero.iter() {
                    y.data[r as usize] = 0.0;
                }
            } else {
                for &r in self.prezero.iter() {
                    let base = r as usize * self.k;
                    y.data[base..base + self.k].fill(0.0);
                }
            }
        }
        if self.part.nnz == 0 || self.k == 0 {
            return;
        }
        let k = self.k;

        if k == 1 {
            // Degenerate single-column block: y's backing storage *is* a
            // vector, so run the planned-SpMV segment walk — not a copy
            // of it, the *same instantiation* `SpmvPlan` executes
            // (`spmv_segment_walk` is `#[inline(never)]`). No column-tile
            // iterator, no strided addressing, no width dispatch: a k=1
            // SpMM is the planned SpMV in machine code, bits, and cost.
            spmv_segment_walk(&self.part, self.cfg.nv(), a, &x.data, &mut y.data, carries);
            return;
        }

        // The simulated kernel walks ⌈k / TILE_K⌉ column tiles and that is
        // what the plan charged; the host numeric walk fuses adjacent tiles
        // into passes of up to `HOST_TILE` columns so A's CSR arrays stream
        // fewer times and each gathered operand row is consumed in one go.
        // Tile width never affects the bits — per column the summation
        // order is width-invariant (asserted by
        // `tile_width_does_not_change_the_result_bits`) — so the fused walk
        // is bitwise identical to the charged decomposition.
        const HOST_TILE: usize = 64;
        for (col0, w) in column_tiles(k, self.cfg.tile().max(HOST_TILE)) {
            carries.clear();
            // One SIMD-feature dispatch per pass, not per segment: the
            // whole CTA walk is compiled per feature tier, so the inner
            // kernels inline into it and the lane accumulators stay in
            // registers across the segment loop.
            #[cfg(target_arch = "x86_64")]
            {
                // 512-bit lanes only pay off once the accumulator set
                // overflows the sixteen 256-bit register names; narrower
                // tiles measure faster under plain AVX2.
                if w >= 32 && crate::simd::have_avx512() {
                    // SAFETY: AVX-512F support was just verified at runtime.
                    unsafe { self.tile_pass_avx512(a, x, y, acc, carries, col0, w) };
                } else if crate::simd::have_avx2() {
                    // SAFETY: AVX2 support was just verified at runtime.
                    unsafe { self.tile_pass_avx2(a, x, y, acc, carries, col0, w) };
                } else {
                    self.tile_pass_portable(a, x, y, acc, carries, col0, w);
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            self.tile_pass_portable(a, x, y, acc, carries, col0, w);

            for &(idx, sum) in carries.iter() {
                y.data[idx] += sum;
            }
        }
    }

    /// One fused column pass `[col0, col0 + w)` over every CTA: the
    /// segment walk with a `w`-wide accumulator (or the strided scalar
    /// dot when `w == 1`), complete rows assigned into `y`, trailing
    /// segments appended to `carries` as flat `y` indices. Marked
    /// `#[inline(always)]` so each `tile_pass_*` wrapper compiles its own
    /// copy under its target features.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn tile_pass_body(
        &self,
        a: &CsrMatrix,
        x: &DenseBlock,
        y: &mut DenseBlock,
        acc: &mut Vec<f64>,
        carries: &mut Vec<(usize, f64)>,
        col0: usize,
        w: usize,
    ) {
        let nnz = self.part.nnz;
        let nv = self.cfg.nv();
        let k = self.k;
        let num_ctas = self.part.num_ctas();
        let offsets = &self.part.offsets;

        if w == 1 {
            // Scalar tile: exactly the planned-SpMV segment walk with a
            // stride-k operand and output, so a single-column SpMM pays
            // no tiling overhead (no width-w accumulator, no per-item
            // slice juggling) and stays bitwise identical to SpMV.
            for cta_id in 0..num_ctas {
                let lo = cta_id * nv;
                let hi = (lo + nv).min(nnz);
                let (row_lo, row_hi) = self.part.cta_row_range(cta_id);
                let mut r = row_lo;
                let mut i = lo;
                while i < hi {
                    while r < row_hi && offsets[r + 1] <= i {
                        r += 1;
                    }
                    let seg_end = if r < row_hi {
                        offsets[r + 1].min(hi)
                    } else {
                        hi
                    };
                    let sum = dot_gather_strided_impl(
                        &a.values[i..seg_end],
                        &a.col_idx[i..seg_end],
                        &x.data,
                        k,
                        col0,
                    );
                    let base = self.part.to_physical(r) * k + col0;
                    if seg_end == hi {
                        carries.push((base, sum));
                    } else {
                        y.data[base] = sum;
                    }
                    i = seg_end;
                }
            }
        } else {
            acc.clear();
            acc.resize(w, 0.0);
            for cta_id in 0..num_ctas {
                let lo = cta_id * nv;
                let hi = (lo + nv).min(nnz);
                let (row_lo, row_hi) = self.part.cta_row_range(cta_id);
                let mut r = row_lo;
                let mut i = lo;
                // Segment-wise walk (see `SpmvPlan::numeric_execute`):
                // the w-wide accumulator folds each segment's products
                // in item order from zero, complete rows store w
                // contiguous doubles, the trailing segment carries.
                while i < hi {
                    while r < row_hi && offsets[r + 1] <= i {
                        r += 1;
                    }
                    let seg_end = if r < row_hi {
                        offsets[r + 1].min(hi)
                    } else {
                        hi
                    };
                    let base = self.part.to_physical(r) * k + col0;
                    // Complete rows write their lane sums straight into
                    // `y`; only the CTA's trailing segment goes through
                    // the scratch accumulator (to be carried).
                    let dst: &mut [f64] = if seg_end == hi {
                        &mut acc[..w]
                    } else {
                        &mut y.data[base..base + w]
                    };
                    seg_dot_impl(
                        &a.values[i..seg_end],
                        &a.col_idx[i..seg_end],
                        &x.data,
                        k,
                        col0,
                        dst,
                    );
                    if seg_end == hi {
                        for (t, &s) in acc.iter().enumerate() {
                            carries.push((base + t, s));
                        }
                    }
                    i = seg_end;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn tile_pass_portable(
        &self,
        a: &CsrMatrix,
        x: &DenseBlock,
        y: &mut DenseBlock,
        acc: &mut Vec<f64>,
        carries: &mut Vec<(usize, f64)>,
        col0: usize,
        w: usize,
    ) {
        self.tile_pass_body(a, x, y, acc, carries, col0, w)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn tile_pass_avx2(
        &self,
        a: &CsrMatrix,
        x: &DenseBlock,
        y: &mut DenseBlock,
        acc: &mut Vec<f64>,
        carries: &mut Vec<(usize, f64)>,
        col0: usize,
        w: usize,
    ) {
        self.tile_pass_body(a, x, y, acc, carries, col0, w)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn tile_pass_avx512(
        &self,
        a: &CsrMatrix,
        x: &DenseBlock,
        y: &mut DenseBlock,
        acc: &mut Vec<f64>,
        carries: &mut Vec<(usize, f64)>,
        col0: usize,
        w: usize,
    ) {
        self.tile_pass_body(a, x, y, acc, carries, col0, w)
    }

    /// Swap the numeric values of the planned matrix in place without
    /// re-partitioning (see [`crate::spmv::SpmvPlan::update_values`]; the
    /// tiled traversal is equally pattern-only).
    ///
    /// Errors (leaving `a` untouched) if `a` does not carry the planned
    /// pattern or `values` is not one value per planned nonzero.
    pub fn update_values(&self, a: &mut CsrMatrix, values: Vec<f64>) -> Result<(), PlanError> {
        let expected = (self.part.num_rows, self.num_cols, self.part.nnz);
        let got = (a.num_rows, a.num_cols, a.nnz());
        if expected != got {
            return Err(PlanError::PatternMismatch { expected, got });
        }
        if values.len() != self.part.nnz {
            return Err(PlanError::ValueLengthMismatch {
                expected: self.part.nnz,
                got: values.len(),
            });
        }
        a.values = values;
        Ok(())
    }

    fn check_inputs(&self, a: &CsrMatrix, x: &DenseBlock) {
        assert_eq!(
            x.rows, self.num_cols,
            "operand block must have num_cols rows"
        );
        assert_eq!(
            x.cols, self.k,
            "operand block width must equal the planned k"
        );
        assert_eq!(
            (a.num_rows, a.num_cols, a.nnz()),
            (self.part.num_rows, self.num_cols, self.part.nnz),
            "matrix does not match the plan"
        );
    }

    /// Run the tiled reduction + update phases against the planned matrix.
    ///
    /// Convenience wrapper over [`SpmmPlan::execute_into`] that allocates
    /// the output block and clones the cached phase stats. `device` is
    /// unused beyond API symmetry — the cost was charged at plan build.
    ///
    /// # Panics
    /// Panics if `a` does not match the planned matrix's shape/nnz or `x`
    /// is not `num_cols × k`.
    pub fn execute(&self, _device: &Device, a: &CsrMatrix, x: &DenseBlock) -> SpmmResult {
        self.check_inputs(a, x);
        let mut y = DenseBlock::zeros(0, 0);
        let mut acc = Vec::new();
        let mut carries = Vec::new();
        self.numeric_execute(a, x, &mut y, &mut acc, &mut carries);
        SpmmResult {
            y,
            partition: LaunchStats::default(),
            reduction: self.reduction.clone(),
            update: self.update.clone(),
            compacted: self.compacted(),
        }
    }

    /// Steady-state execution: write `Y = A·X` into a caller-owned block
    /// using workspace scratch, returning the simulated milliseconds of the
    /// numeric phases (from the plan's cached stats).
    ///
    /// After one warm-up call with the same `y`/`ws`, this performs no heap
    /// allocation.
    ///
    /// # Panics
    /// Panics if `a` does not match the planned matrix's shape/nnz or `x`
    /// is not `num_cols × k`.
    pub fn execute_into(
        &self,
        a: &CsrMatrix,
        x: &DenseBlock,
        y: &mut DenseBlock,
        ws: &mut Workspace,
    ) -> f64 {
        self.check_inputs(a, x);
        let mut acc = ws.take_f64();
        let mut carries = ws.take_carries();
        self.numeric_execute(a, x, y, &mut acc, &mut carries);
        ws.put_f64(acc);
        ws.put_carries(carries);
        self.execute_sim_ms()
    }
}

/// Y = A·X with the column-tiled merge-path decomposition; `k` is taken
/// from the operand block.
///
/// # Panics
/// Panics if `x.rows != a.num_cols`.
pub fn merge_spmm(device: &Device, a: &CsrMatrix, x: &DenseBlock, cfg: &SpmmConfig) -> SpmmResult {
    let plan = SpmmPlan::new(device, a, x.cols, cfg);
    let mut result = plan.execute(device, a, x);
    result.partition = plan.partition;
    result.partition.add(&plan.fixup);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpmvConfig;
    use crate::spmv::SpmvPlan;
    use mps_sparse::dense::spmm_ref;
    use mps_sparse::{gen, CooMatrix};

    fn dev() -> Device {
        Device::titan()
    }

    fn x_block(rows: usize, cols: usize) -> DenseBlock {
        DenseBlock::from_fn(rows, cols, |r, c| {
            1.0 + ((r * 7 + c * 13) % 23) as f64 * 0.25 - (c % 3) as f64
        })
    }

    fn assert_close_block(a: &DenseBlock, b: &DenseBlock) {
        assert_eq!((a.rows, a.cols), (b.rows, b.cols));
        for (i, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
            assert!(
                (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
                "flat index {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_reference_on_generated_matrices() {
        for m in [
            gen::stencil_5pt(18, 18),
            gen::banded(250, 16.0, 6.0, 50, 2),
            gen::random_uniform(300, 280, 7.0, 4.0, 5),
            gen::power_law(350, 350, 1, 1.5, 140, 11),
        ] {
            for k in [1usize, 3, 16, 33] {
                let x = x_block(m.num_cols, k);
                let r = merge_spmm(&dev(), &m, &x, &SpmmConfig::default());
                assert_close_block(&r.y, &spmm_ref(&m, &x));
            }
        }
    }

    #[test]
    fn update_values_matches_fresh_plan_bitwise_and_validates() {
        let a0 = gen::random_uniform(180, 180, 6.0, 3.0, 17);
        let k = 5;
        let plan = SpmmPlan::new(&dev(), &a0, k, &SpmmConfig::default());
        let x = x_block(a0.num_cols, k);
        let mut a = a0.clone();
        let new_vals: Vec<f64> = a0.values.iter().map(|v| v * -0.5 + 1.0).collect();
        plan.update_values(&mut a, new_vals).expect("same pattern");
        let swapped = plan.execute(&dev(), &a, &x);
        let fresh = SpmmPlan::new(&dev(), &a, k, &SpmmConfig::default()).execute(&dev(), &a, &x);
        assert!(
            swapped
                .y
                .data
                .iter()
                .zip(&fresh.y.data)
                .all(|(p, q)| p.to_bits() == q.to_bits()),
            "value swap must replay bitwise identically to a fresh plan"
        );
        assert!(matches!(
            plan.update_values(&mut a, vec![1.0]),
            Err(PlanError::ValueLengthMismatch {
                expected: _,
                got: 1
            })
        ));
        let mut b = gen::stencil_5pt(7, 7);
        let n = b.nnz();
        assert!(matches!(
            plan.update_values(&mut b, vec![0.0; n]),
            Err(PlanError::PatternMismatch { .. })
        ));
    }

    #[test]
    fn k1_is_bitwise_identical_to_planned_spmv() {
        for m in [
            gen::banded(300, 14.0, 5.0, 45, 7),
            gen::power_law(250, 250, 1, 1.5, 100, 3),
            // Empty rows: the compaction path.
            CooMatrix::from_triplets(40, 40, [(2, 1, 2.5), (25, 39, -1.0), (26, 0, 4.0)]).to_csr(),
        ] {
            let x = x_block(m.num_cols, 1);
            let spmm = SpmmPlan::new(&dev(), &m, 1, &SpmmConfig::default());
            let spmv = SpmvPlan::new(&dev(), &m, &SpmvConfig::default());
            let ym = spmm.execute(&dev(), &m, &x);
            let yv = spmv.execute(&dev(), &m, &x.column(0));
            assert_eq!(ym.y.data, yv.y, "k=1 SpMM must be bitwise SpMV");
        }
    }

    #[test]
    fn warm_dirty_output_buffer_is_bitwise_clean() {
        // The targeted pre-zero must make any prior `y` contents
        // invisible: scribble NaN over the warm buffer between
        // executions and demand bitwise equality with the fresh result.
        // A row that is never re-zeroed nor assigned would keep (or
        // propagate, via the carry `+=`) the NaN. Small CTAs put row
        // ends on tile boundaries; the COO matrix adds empty rows.
        let cfg = SpmmConfig {
            block_threads: 32,
            items_per_thread: 2,
            ..SpmmConfig::default()
        };
        for m in [
            gen::random_uniform(300, 300, 6.0, 3.0, 21),
            CooMatrix::from_triplets(40, 40, [(2, 1, 2.5), (25, 39, -1.0), (26, 0, 4.0)]).to_csr(),
        ] {
            for k in [1usize, 5, 16, 64] {
                let x = x_block(m.num_cols, k);
                let plan = SpmmPlan::new(&dev(), &m, k, &cfg);
                let mut ws = Workspace::new();
                let mut y = DenseBlock::zeros(0, 0);
                plan.execute_into(&m, &x, &mut y, &mut ws);
                let fresh = y.data.clone();
                y.data.iter_mut().for_each(|v| *v = f64::NAN);
                plan.execute_into(&m, &x, &mut y, &mut ws);
                assert!(
                    fresh
                        .iter()
                        .zip(&y.data)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "k={k}: dirty warm buffer changed the result"
                );
            }
        }
    }

    #[test]
    fn columns_are_bitwise_identical_to_planned_spmv_columns() {
        let m = gen::random_uniform(220, 220, 6.0, 3.0, 9);
        let k = 9;
        let x = x_block(m.num_cols, k);
        let spmm = SpmmPlan::new(
            &dev(),
            &m,
            k,
            &SpmmConfig {
                tile_k: 4,
                ..SpmmConfig::default()
            },
        );
        let spmv = SpmvPlan::new(&dev(), &m, &SpmvConfig::default());
        let ym = spmm.execute(&dev(), &m, &x);
        for c in 0..k {
            let yv = spmv.execute(&dev(), &m, &x.column(c));
            assert_eq!(ym.y.column(c), yv.y, "column {c}");
        }
    }

    #[test]
    fn tile_width_does_not_change_the_result_bits() {
        let m = gen::banded(280, 18.0, 7.0, 55, 21);
        let x = x_block(m.num_cols, 13);
        let mut reference: Option<DenseBlock> = None;
        for tile_k in [1usize, 2, 5, 13, 64] {
            let cfg = SpmmConfig {
                tile_k,
                ..SpmmConfig::default()
            };
            let r = merge_spmm(&dev(), &m, &x, &cfg);
            match &reference {
                None => reference = Some(r.y),
                Some(want) => assert_eq!(&r.y, want, "tile_k={tile_k}"),
            }
        }
    }

    #[test]
    fn tiled_execution_beats_k_repeated_planned_spmvs() {
        let m = gen::random_uniform(2000, 2000, 12.0, 6.0, 17);
        let spmv = SpmvPlan::new(&dev(), &m, &SpmvConfig::default());
        for k in [4usize, 16, 64] {
            let spmm = SpmmPlan::new(&dev(), &m, k, &SpmmConfig::default());
            let tiled = spmm.execute_sim_ms();
            let repeated = k as f64 * spmv.execute_sim_ms();
            assert!(
                tiled < repeated,
                "k={k}: tiled {tiled} ms !< {repeated} ms for repeated SpMVs"
            );
        }
    }

    #[test]
    fn wide_loads_show_up_in_the_dram_counters() {
        let m = gen::stencil_5pt(40, 40);
        let plan = SpmmPlan::new(&dev(), &m, 16, &SpmmConfig::default());
        assert!(plan.reduction_stats().totals.dram_wide_bytes > 0);
        assert!(plan.update_stats().totals.dram_wide_bytes > 0);
        // The SpMV plan never issues wide accesses.
        let spmv = SpmvPlan::new(&dev(), &m, &SpmvConfig::default());
        assert_eq!(spmv.reduction_stats().totals.dram_wide_bytes, 0);
    }

    #[test]
    fn empty_rows_trigger_compaction_and_stay_zero() {
        let a = CooMatrix::from_triplets(6, 6, [(1, 0, 2.0), (4, 5, 3.0)]).to_csr();
        let x = x_block(6, 3);
        let r = merge_spmm(&dev(), &a, &x, &SpmmConfig::default());
        assert!(r.compacted);
        assert_close_block(&r.y, &spmm_ref(&a, &x));
        assert_eq!(r.y.row(0), &[0.0; 3]);
        assert_eq!(r.y.row(3), &[0.0; 3]);
    }

    #[test]
    fn empty_matrix_gives_zero_block() {
        let a = mps_sparse::CsrMatrix::zeros(5, 5);
        let x = x_block(5, 4);
        let r = merge_spmm(&dev(), &a, &x, &SpmmConfig::default());
        assert_eq!(r.y.data, vec![0.0; 20]);
        assert_eq!(r.sim_ms(), 0.0);
    }

    #[test]
    fn execute_into_is_bitwise_identical_and_reuses_buffers() {
        let m = gen::power_law(400, 400, 1, 1.5, 160, 29);
        let k = 8;
        let x = x_block(m.num_cols, k);
        let plan = SpmmPlan::new(&dev(), &m, k, &SpmmConfig::default());
        let one_shot = plan.execute(&dev(), &m, &x);
        let mut ws = Workspace::new();
        let mut y = DenseBlock::zeros(0, 0);
        let ms = plan.execute_into(&m, &x, &mut y, &mut ws);
        assert_eq!(y, one_shot.y);
        assert!((ms - plan.execute_sim_ms()).abs() < 1e-12);
        // Warm re-run: same result, same backing buffer.
        let ptr = y.data.as_ptr();
        plan.execute_into(&m, &x, &mut y, &mut ws);
        assert_eq!(y, one_shot.y);
        assert_eq!(y.data.as_ptr(), ptr, "output storage must be reused");
    }

    #[test]
    fn num_tiles_covers_k() {
        let m = gen::stencil_5pt(10, 10);
        let cfg = SpmmConfig {
            tile_k: 16,
            ..SpmmConfig::default()
        };
        assert_eq!(SpmmPlan::new(&dev(), &m, 1, &cfg).num_tiles(), 1);
        assert_eq!(SpmmPlan::new(&dev(), &m, 16, &cfg).num_tiles(), 1);
        assert_eq!(SpmmPlan::new(&dev(), &m, 17, &cfg).num_tiles(), 2);
        assert_eq!(SpmmPlan::new(&dev(), &m, 64, &cfg).num_tiles(), 4);
    }

    #[test]
    #[should_panic(expected = "operand block width")]
    fn plan_rejects_mismatched_block_width() {
        let m = gen::stencil_5pt(6, 6);
        let plan = SpmmPlan::new(&dev(), &m, 4, &SpmmConfig::default());
        let x = x_block(m.num_cols, 5);
        plan.execute(&dev(), &m, &x);
    }

    #[test]
    #[should_panic(expected = "does not match the plan")]
    fn plan_rejects_mismatched_matrix() {
        let a = gen::stencil_5pt(8, 8);
        let b = gen::stencil_5pt(9, 9);
        let plan = SpmmPlan::new(&dev(), &a, 2, &SpmmConfig::default());
        // Operand sized for the plan so the shape check is what fires.
        let x = x_block(a.num_cols, 2);
        plan.execute(&dev(), &b, &x);
    }
}
