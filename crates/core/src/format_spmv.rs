//! Planned execution for the row-split format zoo (CMRS, SELL-C-σ).
//!
//! These plans are the engine-facing counterparts of the one-shot kernels
//! in `mps-baselines::format_spmv`: the conversion and the kernel cost
//! simulation happen once at build, and every execute replays the cached
//! [`LaunchStats`] while computing the numerics with a plain row-wise dot
//! over the *original* CSR operand. That works because both format
//! kernels accumulate each row's products in its CSR entry order starting
//! from `-0.0` (the `Iterator::sum` identity) — the result is bitwise
//! identical to the sequential row dot,
//! so the plan never needs the converted value array and stays correct
//! across in-place value updates. The execute path allocates nothing once
//! the output vector is warm.

use crate::error::PlanError;
use mps_simt::grid::{launch_map_phased, LaunchConfig, LaunchStats};
use mps_simt::{Device, Phase};
use mps_sparse::cmrs::CmrsMatrix;
use mps_sparse::sell::{SellCSigmaMatrix, SELL_PAD};
use mps_sparse::CsrMatrix;

/// Threads per CTA for the strip/slice format kernels (matches the
/// baselines kernels, so plan costs equal one-shot costs bitwise).
pub const FORMAT_BLOCK_THREADS: usize = 128;

/// Grid geometry shared by the format kernels and the advisor's cost
/// predictions: CTAs cover `groups` row-groups (strips or slices) of
/// `group_height` rows, packing as many groups per CTA as the block has
/// threads. Returns `(groups_per_cta, num_ctas)`.
pub fn format_grid(groups: usize, group_height: usize) -> (usize, usize) {
    let per_cta = (FORMAT_BLOCK_THREADS / group_height.max(1)).max(1);
    (per_cta, groups.div_ceil(per_cta).max(1))
}

/// Sequential row-wise SpMV: each row accumulated in entry order from
/// `-0.0` — `Iterator::sum`'s empty identity, so empty rows too are
/// bitwise equal to [`mps_sparse::ops::spmv_ref`]. This is the shared
/// numeric ground truth of every row-split format kernel in the repo.
pub fn spmv_rowwise(a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    for (r, out) in y.iter_mut().enumerate().take(a.num_rows) {
        let mut acc = -0.0;
        for (c, v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
            acc += v * x[*c as usize];
        }
        *out = acc;
    }
}

fn check_operand(
    num_rows: usize,
    num_cols: usize,
    a: &CsrMatrix,
    x: &[f64],
) -> Result<(), PlanError> {
    if a.num_rows != num_rows || a.num_cols != num_cols {
        return Err(PlanError::ShapeMismatch {
            left: (num_rows, num_cols),
            right: (a.num_rows, a.num_cols),
        });
    }
    if x.len() != num_cols {
        return Err(PlanError::ShapeMismatch {
            left: (num_cols, 1),
            right: (x.len(), 1),
        });
    }
    Ok(())
}

/// A built CMRS SpMV execution: strip layout priced once, numerics served
/// row-wise from the original CSR.
#[derive(Debug, Clone)]
pub struct CmrsSpmvPlan {
    num_rows: usize,
    num_cols: usize,
    strip_height: usize,
    num_strips: usize,
    stats: LaunchStats,
}

impl CmrsSpmvPlan {
    /// Convert `a` to CMRS (transiently) and simulate the strip kernel
    /// once, caching its cost.
    pub fn new(device: &Device, a: &CsrMatrix) -> CmrsSpmvPlan {
        let m = CmrsMatrix::from_csr(a);
        let (strips_per_cta, num_ctas) = format_grid(m.num_strips(), m.strip_height);
        let (_, stats) = launch_map_phased(
            device,
            "cmrs_spmv",
            Phase::CmrsStrip,
            LaunchConfig::new(num_ctas, FORMAT_BLOCK_THREADS),
            |cta| {
                let s_lo = cta.cta_id * strips_per_cta;
                let s_hi = (s_lo + strips_per_cta).min(m.num_strips());
                let row_lo = s_lo * m.strip_height;
                let row_hi = (s_hi * m.strip_height).min(m.num_rows);
                for s in s_lo..s_hi {
                    let (lo, hi) = (m.strip_ptr[s], m.strip_ptr[s + 1]);
                    let entries = hi - lo;
                    cta.read_coalesced(entries, 2);
                    cta.read_coalesced(entries, 4);
                    cta.read_coalesced(entries, 8);
                    cta.gather(m.col_idx[lo..hi].iter().map(|&c| c as usize), 8);
                    cta.shmem(2 * entries as u64);
                    cta.alu(2 * entries as u64);
                }
                cta.write_coalesced(row_hi.saturating_sub(row_lo), 8);
            },
        );
        CmrsSpmvPlan {
            num_rows: a.num_rows,
            num_cols: a.num_cols,
            strip_height: m.strip_height,
            num_strips: m.num_strips(),
            stats,
        }
    }

    pub fn strip_height(&self) -> usize {
        self.strip_height
    }

    pub fn num_strips(&self) -> usize {
        self.num_strips
    }

    /// Cached simulated cost of one strip-kernel execution.
    pub fn stats(&self) -> &LaunchStats {
        &self.stats
    }

    /// Simulated milliseconds of one planned execution.
    pub fn execute_sim_ms(&self) -> f64 {
        self.stats.sim_ms
    }

    /// Execute against the original CSR operand; returns the simulated
    /// kernel milliseconds. Allocation-free once `y` has capacity.
    pub fn execute_into(&self, a: &CsrMatrix, x: &[f64], y: &mut Vec<f64>) -> f64 {
        self.try_execute_into(a, x, y).expect("format plan operand")
    }

    /// Non-panicking [`CmrsSpmvPlan::execute_into`].
    pub fn try_execute_into(
        &self,
        a: &CsrMatrix,
        x: &[f64],
        y: &mut Vec<f64>,
    ) -> Result<f64, PlanError> {
        check_operand(self.num_rows, self.num_cols, a, x)?;
        y.clear();
        y.resize(self.num_rows, 0.0);
        spmv_rowwise(a, x, y);
        Ok(self.stats.sim_ms)
    }
}

/// A built SELL-C-σ SpMV execution: slice layout priced once, numerics
/// served row-wise from the original CSR.
#[derive(Debug, Clone)]
pub struct SellSpmvPlan {
    num_rows: usize,
    num_cols: usize,
    chunk: usize,
    sigma: usize,
    padded_len: usize,
    nnz: usize,
    stats: LaunchStats,
}

impl SellSpmvPlan {
    /// Convert `a` to SELL-C-σ (transiently) and simulate the slice
    /// kernel once, caching its cost.
    pub fn new(device: &Device, a: &CsrMatrix) -> SellSpmvPlan {
        let m = SellCSigmaMatrix::from_csr(a);
        let (slices_per_cta, num_ctas) = format_grid(m.num_slices(), m.chunk);
        let (_, stats) = launch_map_phased(
            device,
            "sell_spmv",
            Phase::SellSlice,
            LaunchConfig::new(num_ctas, FORMAT_BLOCK_THREADS),
            |cta| {
                let s_lo = cta.cta_id * slices_per_cta;
                let s_hi = (s_lo + slices_per_cta).min(m.num_slices());
                for s in s_lo..s_hi {
                    let lo = m.slice_ptr[s];
                    let slots = m.slice_ptr[s + 1] - lo;
                    cta.read_coalesced(slots, 12);
                    cta.alu(2 * slots as u64);
                    cta.gather(
                        m.col_idx[lo..lo + slots]
                            .iter()
                            .filter(|&&c| c != SELL_PAD)
                            .map(|&c| c as usize),
                        8,
                    );
                    let lanes = (m.num_rows - s * m.chunk).min(m.chunk);
                    cta.scatter(
                        m.perm[s * m.chunk..s * m.chunk + lanes]
                            .iter()
                            .map(|&r| r as usize),
                        8,
                    );
                }
            },
        );
        SellSpmvPlan {
            num_rows: a.num_rows,
            num_cols: a.num_cols,
            chunk: m.chunk,
            sigma: m.sigma,
            padded_len: m.padded_len(),
            nnz: a.nnz(),
            stats,
        }
    }

    pub fn chunk(&self) -> usize {
        self.chunk
    }

    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Stored slots per nonzero (1.0 = no padding).
    pub fn padding_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.padded_len as f64 / self.nnz as f64
        }
    }

    /// Cached simulated cost of one slice-kernel execution.
    pub fn stats(&self) -> &LaunchStats {
        &self.stats
    }

    /// Simulated milliseconds of one planned execution.
    pub fn execute_sim_ms(&self) -> f64 {
        self.stats.sim_ms
    }

    /// Execute against the original CSR operand; returns the simulated
    /// kernel milliseconds. Allocation-free once `y` has capacity.
    pub fn execute_into(&self, a: &CsrMatrix, x: &[f64], y: &mut Vec<f64>) -> f64 {
        self.try_execute_into(a, x, y).expect("format plan operand")
    }

    /// Non-panicking [`SellSpmvPlan::execute_into`].
    pub fn try_execute_into(
        &self,
        a: &CsrMatrix,
        x: &[f64],
        y: &mut Vec<f64>,
    ) -> Result<f64, PlanError> {
        check_operand(self.num_rows, self.num_cols, a, x)?;
        y.clear();
        y.resize(self.num_rows, 0.0);
        spmv_rowwise(a, x, y);
        Ok(self.stats.sim_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::gen;
    use mps_sparse::ops::spmv_ref;

    fn dev() -> Device {
        Device::titan()
    }

    #[test]
    fn format_plans_match_rowwise_reference_bitwise() {
        for m in [
            gen::random_uniform(400, 400, 8.0, 4.0, 5),
            gen::power_law(500, 500, 1, 1.5, 300, 9),
        ] {
            let x: Vec<f64> = (0..m.num_cols).map(|i| 0.5 + (i % 7) as f64).collect();
            let want = spmv_ref(&m, &x);
            let mut y = Vec::new();
            let cmrs = CmrsSpmvPlan::new(&dev(), &m);
            let ms = cmrs.execute_into(&m, &x, &mut y);
            assert!(ms > 0.0);
            assert_eq!(y, want);
            let sell = SellSpmvPlan::new(&dev(), &m);
            let ms = sell.execute_into(&m, &x, &mut y);
            assert!(ms > 0.0);
            assert_eq!(y, want);
        }
    }

    #[test]
    fn plans_survive_value_updates() {
        // The plan prices structure only; numerics come from the operand
        // passed at execute time, so new values flow through untouched.
        let mut m = gen::random_uniform(200, 200, 6.0, 3.0, 2);
        let x = vec![1.0; 200];
        let cmrs = CmrsSpmvPlan::new(&dev(), &m);
        let sell = SellSpmvPlan::new(&dev(), &m);
        for v in &mut m.values {
            *v *= -3.0;
        }
        let want = spmv_ref(&m, &x);
        let mut y = Vec::new();
        cmrs.execute_into(&m, &x, &mut y);
        assert_eq!(y, want);
        sell.execute_into(&m, &x, &mut y);
        assert_eq!(y, want);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let m = gen::random_uniform(50, 60, 4.0, 2.0, 1);
        let other = gen::random_uniform(50, 61, 4.0, 2.0, 1);
        let plan = SellSpmvPlan::new(&dev(), &m);
        let mut y = Vec::new();
        assert!(plan
            .try_execute_into(&other, &vec![0.0; 61], &mut y)
            .is_err());
        assert!(plan.try_execute_into(&m, &[0.0; 3], &mut y).is_err());
    }

    #[test]
    fn grid_geometry_packs_groups_per_block() {
        assert_eq!(format_grid(100, 16), (8, 13));
        assert_eq!(format_grid(3, 32), (4, 1));
        assert_eq!(format_grid(0, 16), (8, 1));
        assert_eq!(format_grid(10, 512), (1, 10));
    }
}
