//! Host-side CSR assembly from sorted packed keys, parallelized with the
//! same fixed-size chunk decomposition the simulated grid uses for CTAs.
//!
//! Both SpAdd and SpGEMM finish with a sorted list of unique packed
//! `(row, col)` keys plus values; turning that into CSR needs the row
//! pointer array and the unpacked column indices. Because the keys are
//! sorted row-major, every row pointer is an independent binary search and
//! every column unpack is an independent mask — both embarrassingly
//! parallel, so the host phase no longer serializes behind the simulated
//! kernels.

use mps_sparse::{unpack_key, CsrMatrix};
use rayon::prelude::*;

/// Chunk width for parallel host passes (matches the `nv = 4096` flat tiles
/// the assembly kernels charge on the device).
const CHUNK: usize = 4096;

/// Row-pointer array for sorted packed keys: `offsets[r]` = index of the
/// first key with row ≥ `r`.
pub fn row_offsets_from_sorted_keys(num_rows: usize, keys: &[u64]) -> Vec<usize> {
    let n_off = num_rows + 1;
    let chunks = n_off.div_ceil(CHUNK);
    let parts: Vec<Vec<usize>> = (0..chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * CHUNK;
            let hi = (lo + CHUNK).min(n_off);
            (lo..hi)
                .map(|r| keys.partition_point(|&k| (k >> 32) < r as u64))
                .collect()
        })
        .collect();
    let mut offsets = Vec::with_capacity(n_off);
    for part in parts {
        offsets.extend(part);
    }
    offsets
}

/// Unpacked column indices of sorted packed keys.
pub fn cols_from_keys(keys: &[u64]) -> Vec<u32> {
    let chunks = keys.len().div_ceil(CHUNK).max(1);
    let parts: Vec<Vec<u32>> = (0..chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * CHUNK;
            let hi = (lo + CHUNK).min(keys.len());
            keys[lo..hi].iter().map(|&k| unpack_key(k).1).collect()
        })
        .collect();
    let mut cols = Vec::with_capacity(keys.len());
    for part in parts {
        cols.extend(part);
    }
    cols
}

/// Assemble a CSR matrix from sorted unique packed keys and their values.
pub fn csr_from_sorted_keys(
    num_rows: usize,
    num_cols: usize,
    keys: &[u64],
    values: Vec<f64>,
) -> CsrMatrix {
    debug_assert_eq!(keys.len(), values.len());
    debug_assert!(
        keys.windows(2).all(|w| w[0] < w[1]),
        "keys must be sorted unique"
    );
    CsrMatrix {
        num_rows,
        num_cols,
        row_offsets: row_offsets_from_sorted_keys(num_rows, keys),
        col_idx: cols_from_keys(keys),
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::{gen, pack_key};

    /// Serial reference: count rows then prefix-sum, the pre-parallel idiom.
    fn csr_ref(num_rows: usize, num_cols: usize, keys: &[u64], values: Vec<f64>) -> CsrMatrix {
        let mut row_offsets = vec![0usize; num_rows + 1];
        let mut col_idx = Vec::with_capacity(keys.len());
        for &k in keys {
            let (r, c) = unpack_key(k);
            row_offsets[r as usize + 1] += 1;
            col_idx.push(c);
        }
        for i in 0..num_rows {
            row_offsets[i + 1] += row_offsets[i];
        }
        CsrMatrix {
            num_rows,
            num_cols,
            row_offsets,
            col_idx,
            values,
        }
    }

    #[test]
    fn matches_serial_reference_on_generated_matrix() {
        let m = gen::random_uniform(300, 200, 5.0, 3.0, 11);
        let mut keys = Vec::new();
        for r in 0..m.num_rows {
            for &c in m.row_cols(r) {
                keys.push(pack_key(r as u32, c));
            }
        }
        let built = csr_from_sorted_keys(300, 200, &keys, m.values.clone());
        let reference = csr_ref(300, 200, &keys, m.values.clone());
        assert_eq!(built, reference);
        assert_eq!(built, m);
    }

    #[test]
    fn empty_key_list_gives_empty_matrix() {
        let c = csr_from_sorted_keys(5, 7, &[], Vec::new());
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.row_offsets, vec![0; 6]);
        assert_eq!((c.num_rows, c.num_cols), (5, 7));
    }

    #[test]
    fn rows_with_no_keys_get_empty_ranges() {
        let keys = vec![pack_key(1, 0), pack_key(1, 3), pack_key(4, 2)];
        let c = csr_from_sorted_keys(6, 5, &keys, vec![1.0, 2.0, 3.0]);
        assert_eq!(c.row_offsets, vec![0, 0, 2, 2, 2, 3, 3]);
        assert_eq!(c.col_idx, vec![0, 3, 2]);
        c.validate().expect("well-formed");
    }

    #[test]
    fn chunk_boundaries_are_seamless() {
        // More rows than one chunk so the parallel row-pointer pass spans
        // several chunks.
        let rows = 3 * super::CHUNK + 17;
        let keys: Vec<u64> = (0..rows as u32)
            .step_by(3)
            .map(|r| pack_key(r, 1))
            .collect();
        let vals = vec![1.0; keys.len()];
        let c = csr_from_sorted_keys(rows, 4, &keys, vals.clone());
        assert_eq!(c, csr_ref(rows, 4, &keys, vals));
    }
}
