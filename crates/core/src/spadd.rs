//! Balanced-path SpAdd (Section III-B).
//!
//! Addition of two sorted sparse matrices is a set union over (row,col)
//! tuples (Algorithm 1's tuple ordering = lexicographic order of the packed
//! 64-bit key). The matrices are expanded to COO keys, partitioned with
//! balanced path so that matched tuples never split across CTAs, and
//! reduced in two passes: count (to size C exactly) and fill. Work per CTA
//! is `nv ± 1` input entries — perfectly balanced irrespective of row
//! structure, which is why Figure 8 reports a correlation of 1.0 between
//! time and `|A| + |B|`.
//!
//! **Plan/execute split.** Key expansion, the balanced-path partition, the
//! count/fill walk and the output pattern depend only on the two sparsity
//! patterns — never on the values. [`SpAddPlan`] runs the whole pipeline
//! once with *provenance indices* in place of values (an index pair has the
//! same 8-byte footprint as an `f64`, so the charged cost is identical) and
//! records, for every output nonzero, which input entries feed it. Each
//! execute is then one flat pass over that source map.

use rayon::prelude::*;

use mps_merge::set_ops::{set_op_pairs, SetOp, SetOpStats};
use mps_simt::grid::{launch_map_phased, LaunchConfig, LaunchStats};
use mps_simt::{Device, Phase};
use mps_sparse::{pack_key, CsrMatrix};

use crate::assemble;
use crate::config::SpAddConfig;
use crate::error::PlanError;

/// Result of a balanced-path SpAdd.
#[derive(Debug, Clone)]
pub struct SpAddResult {
    pub c: CsrMatrix,
    /// Cost of expanding CSR rows to COO keys.
    pub expand: LaunchStats,
    /// Cost of the balanced-path partition + count + fill passes.
    pub union: LaunchStats,
}

impl SpAddResult {
    /// Total simulated kernel time in milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.expand.sim_ms + self.union.sim_ms
    }
}

/// Expand a CSR matrix into packed (row,col) keys on the host, using the
/// same per-CTA tiles the device kernel is charged for: each chunk seeks
/// its starting row with one binary search, then walks the offsets.
fn expand_keys_host(m: &CsrMatrix, nv: usize) -> Vec<u64> {
    let nnz = m.nnz();
    if nnz == 0 {
        return Vec::new();
    }
    let chunks = nnz.div_ceil(nv);
    let parts: Vec<Vec<u64>> = (0..chunks)
        .into_par_iter()
        .map(|chunk| {
            let lo = chunk * nv;
            let hi = (lo + nv).min(nnz);
            // Row containing nonzero `lo`: last row whose offset is ≤ lo
            // (ties from empty rows resolve to the owning row).
            let mut r = m.row_offsets.partition_point(|&o| o <= lo) - 1;
            let mut keys = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                while m.row_offsets[r + 1] <= i {
                    r += 1;
                }
                keys.push(pack_key(r as u32, m.col_idx[i]));
            }
            keys
        })
        .collect();
    let mut keys = Vec::with_capacity(nnz);
    for p in parts {
        keys.extend(p);
    }
    keys
}

/// Expand a CSR matrix into packed (row,col) keys, charging one pass.
/// Shared with [`crate::delta`], whose union side is an expanded matrix too.
pub(crate) fn expand_keys(device: &Device, m: &CsrMatrix, nv: usize) -> (Vec<u64>, LaunchStats) {
    let nnz = m.nnz();
    let num_ctas = nnz.div_ceil(nv).max(1);
    let keys = expand_keys_host(m, nv);
    let cfg = LaunchConfig::new(num_ctas, 128);
    let (_, stats) = launch_map_phased(device, "coo_expand", Phase::Expand, cfg, |cta| {
        let lo = cta.cta_id * nv;
        let hi = (lo + nv).min(nnz);
        cta.read_coalesced(hi - lo, 4);
        cta.alu((hi - lo) as u64);
        cta.write_coalesced(hi - lo, 8);
    });
    (keys, stats)
}

/// Sentinel marking "no contribution from this operand" in a source pair.
/// Shared with [`crate::delta`], which reuses the provenance-pair union.
pub(crate) const NONE: u32 = u32::MAX;

/// Precomputed SpAdd state for a fixed pair of sparsity patterns: the
/// output pattern, a per-output source map into the operands' value arrays,
/// and the cached simulated cost of every phase.
///
/// The build runs the exact pipeline `merge_spadd` used to run per call —
/// expansion launches, balanced-path partition, count and fill passes —
/// but carries `(a index, b index)` provenance pairs through the union
/// instead of values. A pair is 8 bytes, the same as an `f64`, so the
/// charged cost is identical to a numeric run. Each
/// [`SpAddPlan::execute_into`] is then a single flat loop: `a_only` entries
/// copy, `b_only` entries copy, matched entries add — in exactly the order
/// and with exactly the floating-point combination the fused kernel used.
#[derive(Debug, Clone)]
pub struct SpAddPlan {
    num_rows: usize,
    num_cols: usize,
    a_nnz: usize,
    b_nnz: usize,
    /// Output pattern.
    row_offsets: Vec<usize>,
    col_idx: Vec<u32>,
    /// Per-output (index into a.values, index into b.values); [`NONE`]
    /// marks an absent operand.
    src: Vec<(u32, u32)>,
    /// Cached cost of the two expansion launches.
    expand: LaunchStats,
    /// Cached per-phase cost of the partition + count + fill passes.
    union: SetOpStats,
}

impl SpAddPlan {
    /// Build the plan for `a + b`'s sparsity patterns, charging the full
    /// pipeline cost against `device` once.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn new(device: &Device, a: &CsrMatrix, b: &CsrMatrix, cfg: &SpAddConfig) -> SpAddPlan {
        Self::try_new(device, a, b, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`SpAddPlan::new`]: returns [`PlanError`] when the
    /// operand shapes differ or the configuration is invalid.
    pub fn try_new(
        device: &Device,
        a: &CsrMatrix,
        b: &CsrMatrix,
        cfg: &SpAddConfig,
    ) -> Result<SpAddPlan, PlanError> {
        if (a.num_rows, a.num_cols) != (b.num_rows, b.num_cols) {
            return Err(PlanError::ShapeMismatch {
                left: (a.num_rows, a.num_cols),
                right: (b.num_rows, b.num_cols),
            });
        }
        if cfg.nv <= 1 {
            return Err(PlanError::InvalidConfig(
                "SpAdd nv must exceed 1 (balanced tiles shift by one)",
            ));
        }

        let (a_keys, mut expand) = expand_keys(device, a, cfg.nv);
        let (b_keys, expand_b) = expand_keys(device, b, cfg.nv);
        expand.add(&expand_b);

        // Provenance pairs ride through the union where values normally
        // would; the combine records the matched pair.
        let a_src: Vec<(u32, u32)> = (0..a.nnz() as u32).map(|i| (i, NONE)).collect();
        let b_src: Vec<(u32, u32)> = (0..b.nnz() as u32).map(|j| (NONE, j)).collect();
        let (keys, src, union) = set_op_pairs(
            device,
            SetOp::Union,
            &a_keys,
            &a_src,
            &b_keys,
            &b_src,
            |x, y| (x.0, y.1),
            cfg.nv,
        );

        let offsets = assemble::row_offsets_from_sorted_keys(a.num_rows, &keys);
        let cols = assemble::cols_from_keys(&keys);
        Ok(SpAddPlan {
            num_rows: a.num_rows,
            num_cols: a.num_cols,
            a_nnz: a.nnz(),
            b_nnz: b.nnz(),
            row_offsets: offsets,
            col_idx: cols,
            src,
            expand,
            union,
        })
    }

    /// Number of nonzeros in the output pattern.
    pub fn output_nnz(&self) -> usize {
        self.src.len()
    }

    /// Simulated milliseconds charged at plan build (expand + union).
    pub fn build_sim_ms(&self) -> f64 {
        self.expand.sim_ms + self.union.sim_ms()
    }

    /// Cached cost of the two key-expansion launches.
    pub fn expand_stats(&self) -> &LaunchStats {
        &self.expand
    }

    /// Cached per-phase cost of the balanced-path union (partition, count,
    /// fill).
    pub fn union_stats(&self) -> &SetOpStats {
        &self.union
    }

    fn check_inputs(&self, a: &CsrMatrix, b: &CsrMatrix) {
        assert_eq!(
            (a.num_rows, a.num_cols, a.nnz()),
            (self.num_rows, self.num_cols, self.a_nnz),
            "matrix A does not match the plan"
        );
        assert_eq!(
            (b.num_rows, b.num_cols, b.nnz()),
            (self.num_rows, self.num_cols, self.b_nnz),
            "matrix B does not match the plan"
        );
    }

    /// Steady-state execution: write the output values for `a + b` into a
    /// caller-owned buffer (the pattern lives in the plan). Performs no
    /// heap allocation once `values` has warmed to capacity.
    ///
    /// Returns the simulated milliseconds of the planned pipeline (from the
    /// cached stats — structure work is not re-simulated).
    ///
    /// # Panics
    /// Panics if either matrix does not match the planned patterns.
    pub fn execute_into(&self, a: &CsrMatrix, b: &CsrMatrix, values: &mut Vec<f64>) -> f64 {
        self.check_inputs(a, b);
        values.clear();
        values.reserve(self.src.len());
        for &(i, j) in &self.src {
            let v = if j == NONE {
                a.values[i as usize]
            } else if i == NONE {
                b.values[j as usize]
            } else {
                a.values[i as usize] + b.values[j as usize]
            };
            values.push(v);
        }
        self.build_sim_ms()
    }

    /// Run the planned addition, assembling a full [`SpAddResult`] (clones
    /// the cached pattern and stats). `device` is unused beyond API
    /// symmetry — the cost was charged at plan build.
    pub fn execute(&self, _device: &Device, a: &CsrMatrix, b: &CsrMatrix) -> SpAddResult {
        let mut values = Vec::new();
        self.execute_into(a, b, &mut values);
        SpAddResult {
            c: CsrMatrix {
                num_rows: self.num_rows,
                num_cols: self.num_cols,
                row_offsets: self.row_offsets.clone(),
                col_idx: self.col_idx.clone(),
                values,
            },
            expand: self.expand.clone(),
            union: self.union.combined(),
        }
    }
}

/// C = A + B via balanced-path set union.
///
/// # Panics
/// Panics if the shapes differ.
pub fn merge_spadd(
    device: &Device,
    a: &CsrMatrix,
    b: &CsrMatrix,
    cfg: &SpAddConfig,
) -> SpAddResult {
    SpAddPlan::new(device, a, b, cfg).execute(device, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::dense::{from_dense, to_dense};
    use mps_sparse::gen;
    use mps_sparse::ops::spadd_ref;
    use proptest::prelude::*;

    fn dev() -> Device {
        Device::titan()
    }

    fn cfg() -> SpAddConfig {
        SpAddConfig::default()
    }

    #[test]
    fn a_plus_a_doubles_values() {
        let a = gen::stencil_5pt(10, 10);
        let r = merge_spadd(&dev(), &a, &a, &cfg());
        assert_eq!(r.c.nnz(), a.nnz());
        for (x, y) in r.c.values.iter().zip(&a.values) {
            assert_eq!(*x, 2.0 * y);
        }
        r.c.validate().expect("well-formed");
    }

    #[test]
    fn disjoint_patterns_concatenate() {
        let a = from_dense(&[vec![1.0, 0.0], vec![0.0, 0.0]]);
        let b = from_dense(&[vec![0.0, 2.0], vec![3.0, 0.0]]);
        let r = merge_spadd(&dev(), &a, &b, &cfg());
        assert_eq!(to_dense(&r.c), vec![vec![1.0, 2.0], vec![3.0, 0.0]]);
    }

    #[test]
    fn empty_plus_empty() {
        let a = CsrMatrix::zeros(4, 7);
        let r = merge_spadd(&dev(), &a, &a, &cfg());
        assert_eq!(r.c.nnz(), 0);
        assert_eq!(r.c.num_cols, 7);
    }

    #[test]
    fn matches_reference_on_suite_families() {
        for (a, b) in [
            (
                gen::banded(200, 12.0, 4.0, 40, 1),
                gen::banded(200, 8.0, 3.0, 30, 2),
            ),
            (
                gen::power_law(300, 300, 1, 1.5, 100, 3),
                gen::random_uniform(300, 300, 4.0, 2.0, 4),
            ),
        ] {
            let r = merge_spadd(&dev(), &a, &b, &cfg());
            assert_eq!(r.c, spadd_ref(&a, &b));
        }
    }

    #[test]
    fn small_tiles_still_correct() {
        let a = gen::random_uniform(50, 50, 5.0, 3.0, 7);
        let b = gen::random_uniform(50, 50, 5.0, 3.0, 8);
        let tiny = SpAddConfig {
            block_threads: 32,
            nv: 2,
        };
        let r = merge_spadd(&dev(), &a, &b, &tiny);
        assert_eq!(r.c, spadd_ref(&a, &b));
    }

    #[test]
    fn cost_tracks_total_nonzeros() {
        let small = gen::random_uniform(2000, 2000, 4.0, 2.0, 9);
        let big = gen::random_uniform(20_000, 20_000, 4.0, 2.0, 10);
        let rs = merge_spadd(&dev(), &small, &small, &cfg());
        let rb = merge_spadd(&dev(), &big, &big, &cfg());
        assert!(rb.sim_ms() > rs.sim_ms());
    }

    #[test]
    fn plan_reuse_with_new_values_matches_one_shot() {
        let a = gen::random_uniform(200, 200, 5.0, 3.0, 21);
        let b = gen::random_uniform(200, 200, 5.0, 3.0, 22);
        let plan = SpAddPlan::new(&dev(), &a, &b, &cfg());

        let planned = plan.execute(&dev(), &a, &b);
        let one_shot = merge_spadd(&dev(), &a, &b, &cfg());
        assert_eq!(planned.c, one_shot.c, "same values: byte-identical output");
        assert_eq!(
            planned.sim_ms(),
            one_shot.sim_ms(),
            "provenance run must cost the same"
        );

        // Same patterns, different values: the plan still applies.
        let mut a2 = a.clone();
        for v in &mut a2.values {
            *v *= -3.0;
        }
        let planned2 = plan.execute(&dev(), &a2, &b);
        assert_eq!(planned2.c, spadd_ref(&a2, &b));
    }

    #[test]
    fn execute_into_reuses_buffer_without_reallocating() {
        let a = gen::random_uniform(100, 100, 5.0, 3.0, 31);
        let b = gen::random_uniform(100, 100, 5.0, 3.0, 32);
        let plan = SpAddPlan::new(&dev(), &a, &b, &cfg());
        let mut values = Vec::new();
        plan.execute_into(&a, &b, &mut values);
        assert_eq!(values.len(), plan.output_nnz());
        let cap = values.capacity();
        let ptr = values.as_ptr();
        plan.execute_into(&a, &b, &mut values);
        assert_eq!(values.capacity(), cap);
        assert_eq!(values.as_ptr(), ptr, "warm buffer must be reused in place");
        assert_eq!(values, spadd_ref(&a, &b).values);
    }

    #[test]
    #[should_panic(expected = "identical shape")]
    fn shape_mismatch_panics() {
        merge_spadd(
            &dev(),
            &CsrMatrix::zeros(2, 2),
            &CsrMatrix::zeros(2, 3),
            &cfg(),
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_pairs_match_reference(
            rows in 1usize..60,
            cols in 1usize..60,
            s1 in 0u64..500,
            s2 in 500u64..1000,
            nv in 2usize..512,
        ) {
            let a = gen::random_uniform(rows, cols, 4.0, 3.0, s1);
            let b = gen::random_uniform(rows, cols, 4.0, 3.0, s2);
            let c = SpAddConfig { block_threads: 64, nv };
            let r = merge_spadd(&dev(), &a, &b, &c);
            prop_assert_eq!(r.c, spadd_ref(&a, &b));
        }
    }
}
