//! Balanced-path SpAdd (Section III-B).
//!
//! Addition of two sorted sparse matrices is a set union over (row,col)
//! tuples (Algorithm 1's tuple ordering = lexicographic order of the packed
//! 64-bit key). The matrices are expanded to COO keys, partitioned with
//! balanced path so that matched tuples never split across CTAs, and
//! reduced in two passes: count (to size C exactly) and fill. Work per CTA
//! is `nv ± 1` input entries — perfectly balanced irrespective of row
//! structure, which is why Figure 8 reports a correlation of 1.0 between
//! time and `|A| + |B|`.

use mps_merge::set_ops::{set_op_pairs, SetOp};
use mps_simt::grid::{launch_map_named, LaunchConfig, LaunchStats};
use mps_simt::Device;
use mps_sparse::{pack_key, unpack_key, CsrMatrix};

use crate::config::SpAddConfig;

/// Result of a balanced-path SpAdd.
#[derive(Debug, Clone)]
pub struct SpAddResult {
    pub c: CsrMatrix,
    /// Cost of expanding CSR rows to COO keys.
    pub expand: LaunchStats,
    /// Cost of the balanced-path partition + count + fill passes.
    pub union: LaunchStats,
}

impl SpAddResult {
    /// Total simulated kernel time in milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.expand.sim_ms + self.union.sim_ms
    }
}

/// Expand a CSR matrix into packed (row,col) keys, charging one pass.
fn expand_keys(device: &Device, m: &CsrMatrix, nv: usize) -> (Vec<u64>, LaunchStats) {
    let nnz = m.nnz();
    let num_ctas = nnz.div_ceil(nv).max(1);
    // Precompute on the host; the launch charges the device cost of the
    // offsets-to-rows expansion (load offsets + col indices, write keys).
    let mut keys = Vec::with_capacity(nnz);
    for r in 0..m.num_rows {
        for &c in m.row_cols(r) {
            keys.push(pack_key(r as u32, c));
        }
    }
    let cfg = LaunchConfig::new(num_ctas, 128);
    let (_, stats) = launch_map_named(device, "coo_expand", cfg, |cta| {
        let lo = cta.cta_id * nv;
        let hi = (lo + nv).min(nnz);
        cta.read_coalesced(hi - lo, 4);
        cta.alu((hi - lo) as u64);
        cta.write_coalesced(hi - lo, 8);
    });
    (keys, stats)
}

/// C = A + B via balanced-path set union.
///
/// # Panics
/// Panics if the shapes differ.
pub fn merge_spadd(device: &Device, a: &CsrMatrix, b: &CsrMatrix, cfg: &SpAddConfig) -> SpAddResult {
    assert_eq!(
        (a.num_rows, a.num_cols),
        (b.num_rows, b.num_cols),
        "SpAdd operands must have identical shape"
    );

    let (a_keys, mut expand) = expand_keys(device, a, cfg.nv);
    let (b_keys, expand_b) = expand_keys(device, b, cfg.nv);
    expand.add(&expand_b);

    let (keys, vals, union) = set_op_pairs(
        device,
        SetOp::Union,
        &a_keys,
        &a.values,
        &b_keys,
        &b.values,
        |x, y| x + y,
        cfg.nv,
    );

    // Rebuild CSR from the sorted unique keys (row-offset counting pass is
    // part of the fill kernel's write cost; host just restructures).
    let mut row_offsets = vec![0usize; a.num_rows + 1];
    let mut col_idx = Vec::with_capacity(keys.len());
    for &k in &keys {
        let (r, c) = unpack_key(k);
        row_offsets[r as usize + 1] += 1;
        col_idx.push(c);
    }
    for i in 0..a.num_rows {
        row_offsets[i + 1] += row_offsets[i];
    }
    let c = CsrMatrix {
        num_rows: a.num_rows,
        num_cols: a.num_cols,
        row_offsets,
        col_idx,
        values: vals,
    };
    SpAddResult { c, expand, union }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::dense::{from_dense, to_dense};
    use mps_sparse::ops::spadd_ref;
    use mps_sparse::gen;
    use proptest::prelude::*;

    fn dev() -> Device {
        Device::titan()
    }

    fn cfg() -> SpAddConfig {
        SpAddConfig::default()
    }

    #[test]
    fn a_plus_a_doubles_values() {
        let a = gen::stencil_5pt(10, 10);
        let r = merge_spadd(&dev(), &a, &a, &cfg());
        assert_eq!(r.c.nnz(), a.nnz());
        for (x, y) in r.c.values.iter().zip(&a.values) {
            assert_eq!(*x, 2.0 * y);
        }
        r.c.validate().expect("well-formed");
    }

    #[test]
    fn disjoint_patterns_concatenate() {
        let a = from_dense(&[vec![1.0, 0.0], vec![0.0, 0.0]]);
        let b = from_dense(&[vec![0.0, 2.0], vec![3.0, 0.0]]);
        let r = merge_spadd(&dev(), &a, &b, &cfg());
        assert_eq!(to_dense(&r.c), vec![vec![1.0, 2.0], vec![3.0, 0.0]]);
    }

    #[test]
    fn empty_plus_empty() {
        let a = CsrMatrix::zeros(4, 7);
        let r = merge_spadd(&dev(), &a, &a, &cfg());
        assert_eq!(r.c.nnz(), 0);
        assert_eq!(r.c.num_cols, 7);
    }

    #[test]
    fn matches_reference_on_suite_families() {
        for (a, b) in [
            (gen::banded(200, 12.0, 4.0, 40, 1), gen::banded(200, 8.0, 3.0, 30, 2)),
            (
                gen::power_law(300, 300, 1, 1.5, 100, 3),
                gen::random_uniform(300, 300, 4.0, 2.0, 4),
            ),
        ] {
            let r = merge_spadd(&dev(), &a, &b, &cfg());
            assert_eq!(r.c, spadd_ref(&a, &b));
        }
    }

    #[test]
    fn small_tiles_still_correct() {
        let a = gen::random_uniform(50, 50, 5.0, 3.0, 7);
        let b = gen::random_uniform(50, 50, 5.0, 3.0, 8);
        let tiny = SpAddConfig { block_threads: 32, nv: 2 };
        let r = merge_spadd(&dev(), &a, &b, &tiny);
        assert_eq!(r.c, spadd_ref(&a, &b));
    }

    #[test]
    fn cost_tracks_total_nonzeros() {
        let small = gen::random_uniform(2000, 2000, 4.0, 2.0, 9);
        let big = gen::random_uniform(20_000, 20_000, 4.0, 2.0, 10);
        let rs = merge_spadd(&dev(), &small, &small, &cfg());
        let rb = merge_spadd(&dev(), &big, &big, &cfg());
        assert!(rb.sim_ms() > rs.sim_ms());
    }

    #[test]
    #[should_panic(expected = "identical shape")]
    fn shape_mismatch_panics() {
        merge_spadd(&dev(), &CsrMatrix::zeros(2, 2), &CsrMatrix::zeros(2, 3), &cfg());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_pairs_match_reference(
            rows in 1usize..60,
            cols in 1usize..60,
            s1 in 0u64..500,
            s2 in 500u64..1000,
            nv in 2usize..512,
        ) {
            let a = gen::random_uniform(rows, cols, 4.0, 3.0, s1);
            let b = gen::random_uniform(rows, cols, 4.0, 3.0, s2);
            let c = SpAddConfig { block_threads: 64, nv };
            let r = merge_spadd(&dev(), &a, &b, &c);
            prop_assert_eq!(r.c, spadd_ref(&a, &b));
        }
    }
}
