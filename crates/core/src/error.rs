//! Typed plan-construction errors.
//!
//! The planning constructors historically asserted on dimension mismatch.
//! The `try_new` variants return these errors instead; the panicking
//! `new` paths remain as thin wrappers whose messages are the `Display`
//! text below (so existing `should_panic` expectations keep holding).

/// Why a plan could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// SpAdd operands have different shapes.
    ShapeMismatch {
        left: (usize, usize),
        right: (usize, usize),
    },
    /// SpGEMM operands' inner dimensions disagree.
    InnerDimMismatch { a_cols: usize, b_rows: usize },
    /// A kernel configuration value is out of range.
    InvalidConfig(&'static str),
    /// A value swap supplied the wrong number of nonzero values for the
    /// planned pattern.
    ValueLengthMismatch { expected: usize, got: usize },
    /// A matrix handed to a value swap does not carry the planned
    /// sparsity pattern (shape or nnz differ from what was partitioned).
    PatternMismatch {
        expected: (usize, usize, usize),
        got: (usize, usize, usize),
    },
    /// A delta entry addresses a coordinate outside the matrix.
    DeltaOutOfBounds {
        row: u32,
        col: u32,
        num_rows: usize,
        num_cols: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ShapeMismatch { left, right } => write!(
                f,
                "SpAdd operands must have identical shape: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            PlanError::InnerDimMismatch { a_cols, b_rows } => write!(
                f,
                "inner dimensions must agree: A has {a_cols} columns, B has {b_rows} rows"
            ),
            PlanError::InvalidConfig(what) => write!(f, "invalid plan configuration: {what}"),
            PlanError::ValueLengthMismatch { expected, got } => write!(
                f,
                "value update must supply one value per planned nonzero: expected {expected}, got {got}"
            ),
            PlanError::PatternMismatch { expected, got } => write!(
                f,
                "matrix does not match the planned pattern: plan is {}x{} with {} nonzeros, matrix is {}x{} with {}",
                expected.0, expected.1, expected.2, got.0, got.1, got.2
            ),
            PlanError::DeltaOutOfBounds {
                row,
                col,
                num_rows,
                num_cols,
            } => write!(
                f,
                "delta entry ({row}, {col}) is outside the {num_rows}x{num_cols} matrix"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_the_legacy_assert_messages() {
        let shape = PlanError::ShapeMismatch {
            left: (2, 2),
            right: (2, 3),
        };
        assert!(shape.to_string().contains("identical shape"));
        let inner = PlanError::InnerDimMismatch {
            a_cols: 2,
            b_rows: 1,
        };
        assert!(inner.to_string().contains("inner dimensions must agree"));
    }
}
