//! Shared merge-path partition (phase 1 of Section III-A).
//!
//! Both the SpMV and SpMM plans start from the same structural object: one
//! binary search per CTA boundary into the CSR row offsets (with the
//! adaptive empty-row compaction pass in front when the matrix has empty
//! rows), yielding the auxiliary buffer `S` of per-CTA starting rows. The
//! partition depends only on the sparsity pattern and the tile size `nv`,
//! never on numeric values or on how many output columns a consumer wants —
//! so [`MergePartition`] is built **once** per (pattern, `nv`) and shared:
//! [`crate::spmv::SpmvPlan`] executes it against one vector at a time,
//! [`crate::spmm::SpmmPlan`] re-walks the identical boundaries for every
//! column tile of a dense multi-vector block.

use mps_simt::block::binary_search_partition;
use mps_simt::grid::{launch_map_phased, LaunchConfig, LaunchStats};
use mps_simt::{Device, Phase};
use mps_sparse::CsrMatrix;

/// The merge-path partition of one CSR matrix at a fixed tile size:
/// possibly compacted row offsets, the logical→physical row map, and the
/// per-CTA starting rows, together with the simulated cost of computing
/// them on the device.
#[derive(Debug, Clone)]
pub struct MergePartition {
    /// Nonzeros of the partitioned matrix.
    pub nnz: usize,
    /// Physical row count of the partitioned matrix.
    pub num_rows: usize,
    /// Nonzeros per CTA tile the boundaries were searched at.
    pub nv: usize,
    /// Possibly compacted row offsets.
    pub offsets: Vec<usize>,
    /// Logical→physical row map when compaction ran.
    pub row_ids: Option<Vec<u32>>,
    /// Per-CTA starting rows (the paper's auxiliary buffer S).
    pub s: Vec<usize>,
    /// Cost of the partition boundary searches, paid once at build.
    pub stats: LaunchStats,
    /// Cost of the adaptive empty-row compaction pass (zero when the raw
    /// path ran). Kept separate so phase reports can attribute it.
    pub fixup: LaunchStats,
}

impl MergePartition {
    /// Run the boundary searches (and, adaptively, the empty-row
    /// compaction pass) for `a` at `nv` nonzeros per CTA, charging the
    /// device for the partition kernel.
    pub fn build(
        device: &Device,
        a: &CsrMatrix,
        nv: usize,
        force_no_compaction: bool,
    ) -> MergePartition {
        let nnz = a.nnz();
        if nnz == 0 {
            return MergePartition {
                nnz,
                num_rows: a.num_rows,
                nv,
                offsets: vec![0],
                row_ids: None,
                s: Vec::new(),
                stats: LaunchStats::default(),
                fixup: LaunchStats::default(),
            };
        }

        // Adaptive path selection: detect empty rows and compact the
        // offsets so the partition search and the row walker never see
        // zero-length rows.
        let has_empty = a.empty_rows() > 0;
        let compacted = has_empty && !force_no_compaction;
        let (offsets, row_ids): (Vec<usize>, Option<Vec<u32>>) = if compacted {
            let (off, ids) = a.compact_rows();
            (off, Some(ids))
        } else {
            (a.row_offsets.clone(), None)
        };
        let logical_rows = offsets.len() - 1;
        let num_ctas = nnz.div_ceil(nv);

        // The compaction pass streams the raw offsets, flags non-empties,
        // scans, and scatters the surviving offsets/ids — one coalesced
        // sweep over the physical rows, charged as a real kernel so the
        // trace attributes it to the empty-row fixup phase.
        let fixup = if compacted {
            let rows = a.num_rows + 1;
            let per_cta = 128 * 8;
            let cfg_fix = LaunchConfig::cover(rows, per_cta, 128);
            let survivors_per_cta = logical_rows.div_ceil(cfg_fix.grid_dim.max(1));
            let (_, fix_stats) = launch_map_phased(
                device,
                "row_compaction",
                Phase::EmptyRowFixup,
                cfg_fix,
                |cta| {
                    let lo = cta.cta_id * per_cta;
                    let hi = (lo + per_cta).min(rows);
                    let span = hi.saturating_sub(lo);
                    cta.read_coalesced(span, 8);
                    cta.alu(2 * span as u64);
                    cta.write_coalesced(survivors_per_cta.min(span), 12);
                },
            );
            fix_stats
        } else {
            LaunchStats::default()
        };

        // One boundary search per CTA; S[i] = row containing nonzero i*nv.
        let offsets_ref = &offsets;
        let cfg_part = LaunchConfig::new(num_ctas + 1, 64);
        let (s, stats) = launch_map_phased(
            device,
            "spmv_partition",
            Phase::Partition,
            cfg_part,
            |cta| {
                let item = (cta.cta_id * nv).min(nnz.saturating_sub(1));
                cta.read_coalesced(2 * usize::BITS as usize, 8);
                binary_search_partition(cta, offsets_ref, item)
            },
        );

        MergePartition {
            nnz,
            num_rows: a.num_rows,
            nv,
            offsets,
            row_ids,
            s,
            stats,
            fixup,
        }
    }

    /// Simulated milliseconds of the whole build (searches + compaction).
    pub fn build_sim_ms(&self) -> f64 {
        self.stats.sim_ms + self.fixup.sim_ms
    }

    /// Whether the adaptive empty-row compaction path ran.
    pub fn compacted(&self) -> bool {
        self.row_ids.is_some()
    }

    /// Rows after compaction (equals `num_rows` on the raw path).
    pub fn logical_rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of CTA tiles covering the nonzeros.
    pub fn num_ctas(&self) -> usize {
        self.nnz.div_ceil(self.nv)
    }

    /// Map a logical (possibly compacted) row back to its physical index.
    #[inline]
    pub fn to_physical(&self, logical: usize) -> usize {
        match &self.row_ids {
            Some(ids) => ids[logical] as usize,
            None => logical,
        }
    }

    /// Physical rows the segment walk never *assigns*: empty rows, plus
    /// rows whose nonzeros end exactly on a CTA-tile boundary (every
    /// segment of such a row is a trailing carry, folded into `y` with
    /// `+=`). Executors pre-zero exactly these rows instead of
    /// zero-filling the whole output — every other row is overwritten by
    /// a complete-segment assignment, so the result is identical for any
    /// prior buffer contents. Structure-only, computed once at plan build.
    pub fn unassigned_physical_rows(&self) -> Vec<u32> {
        let mut assigned = vec![false; self.num_rows];
        for r in 0..self.logical_rows() {
            let (s, e) = (self.offsets[r], self.offsets[r + 1]);
            // The final segment assigns iff it ends strictly inside its
            // CTA tile: `e % nv == 0` or `e == nnz` means `seg_end == hi`
            // there, i.e. the row only ever carries.
            let carry_only = e % self.nv == 0 || e == self.nnz;
            if e > s && !carry_only {
                assigned[self.to_physical(r)] = true;
            }
        }
        (0..self.num_rows as u32)
            .filter(|&i| !assigned[i as usize])
            .collect()
    }

    /// Row range `[start, end]` a CTA's nonzeros fall into (logical rows).
    #[inline]
    pub fn cta_row_range(&self, cta_id: usize) -> (usize, usize) {
        let row_lo = self.s[cta_id];
        // The last boundary search used item nnz-1; the row range for the
        // final CTA ends at the row containing its last item.
        let row_hi = if cta_id + 1 < self.s.len() {
            self.s[cta_id + 1]
        } else {
            self.logical_rows() - 1
        };
        (row_lo, row_hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::{gen, CooMatrix};

    fn dev() -> Device {
        Device::titan()
    }

    #[test]
    fn partition_is_deterministic_and_charged() {
        let a = gen::banded(400, 12.0, 5.0, 40, 3);
        let p1 = MergePartition::build(&dev(), &a, 896, false);
        let p2 = MergePartition::build(&dev(), &a, 896, false);
        assert_eq!(p1.s, p2.s);
        assert!(p1.stats.sim_ms > 0.0);
        assert_eq!(p1.num_ctas(), a.nnz().div_ceil(896));
        assert!(!p1.compacted());
        assert_eq!(p1.logical_rows(), a.num_rows);
    }

    #[test]
    fn compaction_engages_on_empty_rows() {
        let a = CooMatrix::from_triplets(10, 10, [(2, 1, 1.0), (7, 3, 2.0)]).to_csr();
        let p = MergePartition::build(&dev(), &a, 896, false);
        assert!(p.compacted());
        assert_eq!(p.logical_rows(), 2);
        assert_eq!(p.to_physical(0), 2);
        assert_eq!(p.to_physical(1), 7);
        let raw = MergePartition::build(&dev(), &a, 896, true);
        assert!(!raw.compacted());
        assert_eq!(raw.to_physical(7), 7);
    }

    #[test]
    fn empty_matrix_partitions_to_nothing() {
        let a = CsrMatrix::zeros(4, 4);
        let p = MergePartition::build(&dev(), &a, 896, false);
        assert_eq!(p.num_ctas(), 0);
        assert_eq!(p.stats.sim_ms, 0.0);
    }

    #[test]
    fn unassigned_rows_are_empty_or_boundary_ending() {
        // nv = 4 over offsets [0, 4, 6, 9, 9]: row 0 ends exactly on the
        // first CTA boundary (carry-only), row 1 ends strictly inside
        // CTA 1 (assigned), row 2 ends at nnz (the final CTA's trailing
        // carry), row 3 is empty. Both the compacted and raw partitions
        // must report physical rows {0, 2, 3}.
        let mut trips = Vec::new();
        for c in 0..4u32 {
            trips.push((0u32, c, 1.0));
        }
        for c in 0..2u32 {
            trips.push((1u32, c, 1.0));
        }
        for c in 0..3u32 {
            trips.push((2u32, c, 1.0));
        }
        let a = CooMatrix::from_triplets(4, 10, trips).to_csr();
        for force_raw in [false, true] {
            let p = MergePartition::build(&dev(), &a, 4, force_raw);
            assert_eq!(
                p.unassigned_physical_rows(),
                vec![0, 2, 3],
                "force_raw={force_raw}"
            );
        }
    }

    #[test]
    fn all_rows_unassigned_when_empty() {
        let a = CsrMatrix::zeros(3, 3);
        let p = MergePartition::build(&dev(), &a, 896, false);
        assert_eq!(p.unassigned_physical_rows(), vec![0, 1, 2]);
    }
}
