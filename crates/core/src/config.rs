//! Tuning parameters for the merge-path kernels.
//!
//! The paper statically tunes entries-per-thread empirically; these defaults
//! correspond to its microbenchmark configuration (128 threads per CTA, 11
//! items per thread for the SpGEMM block sort) and CUB-era SpMV tiles.

/// Merge SpMV tuning (Section III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmvConfig {
    /// Threads per CTA.
    pub block_threads: usize,
    /// Nonzeros processed per thread.
    pub items_per_thread: usize,
    /// When true, always run the raw row-offsets path even if the matrix
    /// has empty rows (used by the empty-row ablation bench; the default
    /// adaptive behaviour compacts offsets when empty rows are detected).
    pub force_no_compaction: bool,
}

impl SpmvConfig {
    /// Nonzeros per CTA.
    pub fn nv(&self) -> usize {
        self.block_threads * self.items_per_thread
    }
}

impl Default for SpmvConfig {
    fn default() -> Self {
        SpmvConfig {
            block_threads: 128,
            items_per_thread: 7,
            force_no_compaction: false,
        }
    }
}

/// Column-tiled merge SpMM tuning (the multi-vector extension of the
/// Section III-A decomposition, after Yang/Buluç/Owens' design principles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmmConfig {
    /// Threads per CTA.
    pub block_threads: usize,
    /// Nonzeros processed per thread.
    pub items_per_thread: usize,
    /// Output columns produced per traversal of `A`'s nonzeros (one
    /// reduction+update launch pair per tile). Wider tiles amortize the CSR
    /// traversal across more columns but hold more state per thread.
    pub tile_k: usize,
    /// When true, always run the raw row-offsets path even if the matrix
    /// has empty rows (mirrors [`SpmvConfig::force_no_compaction`]).
    pub force_no_compaction: bool,
}

impl SpmmConfig {
    /// Nonzeros per CTA.
    pub fn nv(&self) -> usize {
        self.block_threads * self.items_per_thread
    }

    /// Column tile width, clamped to at least one.
    pub fn tile(&self) -> usize {
        self.tile_k.max(1)
    }
}

impl Default for SpmmConfig {
    fn default() -> Self {
        SpmmConfig {
            block_threads: 128,
            items_per_thread: 7,
            tile_k: 16,
            force_no_compaction: false,
        }
    }
}

/// Balanced-path SpAdd tuning (Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpAddConfig {
    /// Threads per CTA.
    pub block_threads: usize,
    /// Input elements (from A and B combined) per CTA tile.
    pub nv: usize,
}

impl Default for SpAddConfig {
    fn default() -> Self {
        SpAddConfig {
            block_threads: 128,
            nv: 1024,
        }
    }
}

/// Merge SpGEMM tuning (Section III-C), plus the bin-adaptive numeric
/// thresholds of the symbolic/numeric split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpgemmConfig {
    /// Threads per CTA.
    pub block_threads: usize,
    /// Intermediate products expanded per thread.
    pub items_per_thread: usize,
    /// Tile size of the global radix-sort passes.
    pub global_sort_nv: usize,
    /// Rows with at most this many intermediate products take the numeric
    /// tiny path (dense-accumulator scatter, shared-memory resident). 32 is
    /// the warp-width bin OpSparse and the Liu–Vinter framework both place
    /// their smallest rows in.
    pub bin_tiny_max: usize,
    /// Rows with products in `(bin_tiny_max, bin_mid_max]` take the numeric
    /// mid path (open-addressing hash reduction in shared memory, sized to
    /// the row's *output* nonzeros). Rows above fall back to the paper's
    /// global two-pass sort. 512 keeps the table within one CTA's shared
    /// memory at 8-byte entries.
    pub bin_mid_max: usize,
}

impl SpgemmConfig {
    /// Products per CTA (`N_CTA` in the paper).
    pub fn nv(&self) -> usize {
        self.block_threads * self.items_per_thread
    }
}

impl Default for SpgemmConfig {
    fn default() -> Self {
        SpgemmConfig {
            block_threads: 128,
            items_per_thread: 11,
            global_sort_nv: 2048,
            bin_tiny_max: 32,
            bin_mid_max: 512,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spgemm_tile_matches_paper_microbenchmark() {
        // Figure 4: 128 threads × 11 items = 1408 products per CTA.
        assert_eq!(SpgemmConfig::default().nv(), 1408);
    }

    #[test]
    fn spmv_tile_is_threads_times_items() {
        let c = SpmvConfig {
            block_threads: 64,
            items_per_thread: 4,
            force_no_compaction: false,
        };
        assert_eq!(c.nv(), 256);
    }
}
