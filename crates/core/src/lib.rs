//! # mps-core — merge-path sparse matrix kernels
//!
//! The paper's contribution: three sparse kernels whose work decomposition
//! is *flat* — a fixed number of nonzeros (or intermediate products) per
//! CTA, independent of row segmentation — so processing time tracks total
//! work with correlation ≈ 1 across wildly different sparsity structures.
//!
//! * [`spmv`] — CSR SpMV in three phases (partition / reduction / update),
//!   with adaptive empty-row compaction (Section III-A);
//! * [`spmm`] — CSR × dense multi-vector by the same decomposition, column
//!   tiled so one traversal of A's nonzeros produces `TILE_K` output
//!   columns, sharing the [`partition`] phase with SpMV;
//! * [`spadd`] — sparse matrix addition as a balanced-path set union over
//!   (row,col)-packed keys (Section III-B);
//! * [`spgemm`] — sparse matrix-matrix multiplication by flat decomposition
//!   over intermediate products with two-level sorting: a single-pass CTA
//!   radix sort, a permutation-only global sort, deferred product
//!   formation, and a final reduce-by-key (Section III-C, Figure 3).
//!
//! All kernels run on the [`mps_simt`] virtual device and report both their
//! results and the simulated cost of every launch.

pub mod assemble;
pub mod config;
pub mod delta;
pub mod error;
pub mod format_spmv;
pub mod partition;
mod simd;
pub mod spadd;
pub mod spgemm;
pub mod spmm;
pub mod spmv;
pub mod workspace;

pub use config::{SpAddConfig, SpgemmConfig, SpmmConfig, SpmvConfig};
pub use delta::{apply_delta, apply_delta_reference, CsrDelta, DeltaApplied};
pub use error::PlanError;
pub use format_spmv::{
    format_grid, spmv_rowwise, CmrsSpmvPlan, SellSpmvPlan, FORMAT_BLOCK_THREADS,
};
pub use partition::MergePartition;
pub use spadd::{merge_spadd, SpAddPlan, SpAddResult};
pub use spgemm::adaptive::{adaptive_spgemm, segmented_spgemm, AdaptivePolicy, PipelineChoice};
pub use spgemm::{
    merge_spgemm, BinClass, BinSummary, HashAccumulator, PhaseTimes, RowBins, SpgemmPlan,
    SpgemmResult,
};
pub use spmm::{merge_spmm, SpmmPlan, SpmmResult};
pub use spmv::{merge_spmv, SpmvPlan, SpmvResult};
pub use workspace::Workspace;
