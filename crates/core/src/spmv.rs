//! Merge-path SpMV (Section III-A).
//!
//! Flat decomposition: each CTA processes exactly `nv` nonzeros regardless
//! of row geometry. Three phases:
//!
//! 1. **Partition** — one binary search per CTA boundary into the CSR row
//!    offsets, recording the row containing each CTA's first nonzero in the
//!    auxiliary buffer `S`.
//! 2. **Reduction** — each CTA loads its nonzeros in striped (coalesced)
//!    order, gathers `x`, forms the products, transposes to blocked order
//!    and runs a CTA-wide segmented scan; complete rows are stored to `y`,
//!    and the (possibly row-spanning) trailing partial sum becomes the
//!    CTA's carry in `r`.
//! 3. **Update** — a segmented scan over the carries folds row-spanning
//!    partial sums into `y`.
//!
//! Empty rows: the fast path walks the raw row offsets; when the input has
//! empty rows the kernel adaptively compacts the offsets array first (the
//! paper's "slightly slower method"), charging the extra pass.

use mps_simt::block::{binary_search_partition, block_segmented_reduce};
use mps_simt::cta::Cta;
use mps_simt::grid::{launch_map_named, LaunchConfig, LaunchStats};
use mps_simt::Device;
use mps_sparse::CsrMatrix;

use crate::config::SpmvConfig;

/// Charge the shared-memory cost of a striped→blocked exchange of `items`
/// register-tile entries (the data itself is already in natural order on
/// the host).
fn charge_exchange(cta: &mut Cta, items: usize) {
    cta.shmem(2 * items as u64);
    cta.sync();
    cta.sync();
}

/// Result of a merge SpMV: the product vector plus per-phase simulated cost.
#[derive(Debug, Clone)]
pub struct SpmvResult {
    pub y: Vec<f64>,
    pub partition: LaunchStats,
    pub reduction: LaunchStats,
    pub update: LaunchStats,
    /// Whether the adaptive empty-row compaction path ran.
    pub compacted: bool,
}

impl SpmvResult {
    /// Total simulated kernel time in milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.partition.sim_ms + self.reduction.sim_ms + self.update.sim_ms
    }

    /// Achieved double-precision GFLOP/s under simulated time, counting the
    /// paper's 2·nnz flops.
    pub fn gflops(&self, nnz: usize) -> f64 {
        if self.sim_ms() == 0.0 {
            return 0.0;
        }
        2.0 * nnz as f64 / (self.sim_ms() * 1e-3) / 1e9
    }
}

/// Precomputed SpMV partition: the phase-1 state (boundary searches plus
/// any empty-row compaction) for a fixed matrix.
///
/// Iterative solvers apply the same operator hundreds of times; the
/// partition depends only on the matrix, so a plan pays it once and every
/// [`SpmvPlan::execute`] runs only the reduction and update phases.
#[derive(Debug, Clone)]
pub struct SpmvPlan {
    cfg: SpmvConfig,
    nnz: usize,
    num_rows: usize,
    num_cols: usize,
    /// Possibly compacted row offsets.
    offsets: Vec<usize>,
    /// Logical→physical row map when compaction ran.
    row_ids: Option<Vec<u32>>,
    /// Per-CTA starting rows (the paper's auxiliary buffer S).
    s: Vec<usize>,
    /// Cost of the partition (and compaction) phase, paid at plan build.
    pub partition: LaunchStats,
}

impl SpmvPlan {
    /// Build the partition for `a` (phase 1 of Section III-A).
    pub fn new(device: &Device, a: &CsrMatrix, cfg: &SpmvConfig) -> SpmvPlan {
        let nnz = a.nnz();
        let nv = cfg.nv();
        if nnz == 0 {
            return SpmvPlan {
                cfg: *cfg,
                nnz,
                num_rows: a.num_rows,
                num_cols: a.num_cols,
                offsets: vec![0],
                row_ids: None,
                s: Vec::new(),
                partition: LaunchStats::default(),
            };
        }

        // Adaptive path selection: detect empty rows and compact the
        // offsets so the partition search and the row walker never see
        // zero-length rows.
        let has_empty = a.empty_rows() > 0;
        let compacted = has_empty && !cfg.force_no_compaction;
        let (offsets, row_ids): (Vec<usize>, Option<Vec<u32>>) = if compacted {
            let (off, ids) = a.compact_rows();
            (off, Some(ids))
        } else {
            (a.row_offsets.clone(), None)
        };
        let logical_rows = offsets.len() - 1;
        let num_ctas = nnz.div_ceil(nv);

        // One boundary search per CTA; S[i] = row containing nonzero i*nv.
        let offsets_ref = &offsets;
        let cfg_part = LaunchConfig::new(num_ctas + 1, 64);
        let (s, mut partition) = launch_map_named(device, "spmv_partition", cfg_part, |cta| {
            let item = (cta.cta_id * nv).min(nnz.saturating_sub(1));
            cta.read_coalesced(2 * usize::BITS as usize, 8);
            binary_search_partition(cta, offsets_ref, item)
        });
        if compacted {
            // Charge the compaction pass: stream offsets, flag non-empties,
            // scan, scatter the surviving offsets/ids.
            partition.totals.dram_read_bytes += (a.num_rows as u64 + 1) * 8;
            partition.totals.dram_write_bytes += (logical_rows as u64) * 12;
            partition.totals.dram_transactions +=
                ((a.num_rows as u64 + 1) * 8 + logical_rows as u64 * 12) / 128 + 1;
        }
        SpmvPlan {
            cfg: *cfg,
            nnz,
            num_rows: a.num_rows,
            num_cols: a.num_cols,
            offsets,
            row_ids,
            s,
            partition,
        }
    }

    /// Whether the adaptive empty-row compaction path ran.
    pub fn compacted(&self) -> bool {
        self.row_ids.is_some()
    }

    /// Run the reduction + update phases against the planned matrix.
    ///
    /// # Panics
    /// Panics if `a` does not match the planned matrix's shape/nnz or `x`
    /// has the wrong length.
    pub fn execute(&self, device: &Device, a: &CsrMatrix, x: &[f64]) -> SpmvResult {
        assert_eq!(x.len(), self.num_cols, "x length must equal num_cols");
        assert_eq!(
            (a.num_rows, a.num_cols, a.nnz()),
            (self.num_rows, self.num_cols, self.nnz),
            "matrix does not match the plan"
        );
        plan_execute(self, device, a, x)
    }
}

/// y = A·x with the merge-path flat decomposition.
///
/// # Panics
/// Panics if `x.len() != a.num_cols`.
pub fn merge_spmv(device: &Device, a: &CsrMatrix, x: &[f64], cfg: &SpmvConfig) -> SpmvResult {
    let plan = SpmvPlan::new(device, a, cfg);
    let mut result = plan.execute(device, a, x);
    result.partition = plan.partition;
    result
}

/// Reduction + update phases against a prepared plan.
fn plan_execute(plan: &SpmvPlan, device: &Device, a: &CsrMatrix, x: &[f64]) -> SpmvResult {
    let nnz = plan.nnz;
    let nv = plan.cfg.nv();
    let cfg = &plan.cfg;
    let compacted = plan.compacted();
    let offsets = &plan.offsets;
    let row_ids = &plan.row_ids;
    let logical_rows = offsets.len().saturating_sub(1);
    let to_physical = |logical: usize| -> usize {
        match row_ids {
            Some(ids) => ids[logical] as usize,
            None => logical,
        }
    };

    let mut y = vec![0.0; plan.num_rows];
    if nnz == 0 {
        return SpmvResult {
            y,
            partition: LaunchStats::default(),
            reduction: LaunchStats::default(),
            update: LaunchStats::default(),
            compacted: false,
        };
    }
    let num_ctas = nnz.div_ceil(nv);
    let offsets_ref = offsets;

    // ---- Phase 2: reduction ---------------------------------------------------
    let s_ref = &plan.s;
    let cfg_red = LaunchConfig::new(num_ctas, cfg.block_threads);
    let (outputs, reduction) = launch_map_named(device, "spmv_reduce", cfg_red, |cta| {
        let lo = cta.cta_id * nv;
        let hi = (lo + nv).min(nnz);
        let count = hi - lo;
        let row_lo = s_ref[cta.cta_id];
        // The last boundary search used item nnz-1; the row range for this
        // CTA ends at the row containing its last item.
        let row_hi = if cta.cta_id + 1 < s_ref.len() {
            s_ref[cta.cta_id + 1]
        } else {
            logical_rows - 1
        };

        // Row offsets for the CTA's rows into shared memory.
        cta.read_coalesced(row_hi - row_lo + 2, 8);
        cta.shmem((row_hi - row_lo + 2) as u64);

        // Strided loads of column indices and values (coalesced).
        cta.read_coalesced(count, 4); // col_idx
        cta.read_coalesced(count, 8); // values

        // Gather x by column index: the data-dependent access.
        cta.gather(
            a.col_idx[lo..hi].iter().map(|&c| c as usize),
            8,
        );

        // Form products (one multiply per item — the 2·nnz flops together
        // with the adds inside the segmented reduction).
        cta.alu(count as u64);
        let mut products = Vec::with_capacity(count);
        for i in lo..hi {
            products.push(a.values[i] * x[a.col_idx[i] as usize]);
        }

        // Expand logical row ids by walking the shared offsets.
        let mut rows = Vec::with_capacity(count);
        let mut r = row_lo;
        cta.alu(count as u64);
        for item in lo..hi {
            while r < row_hi && offsets_ref[r + 1] <= item {
                r += 1;
            }
            rows.push(r);
        }

        // On hardware the strided register tile is transposed to blocked
        // order through shared memory before the scan; host-side the arrays
        // are already in natural order, so only the exchange cost applies
        // (two tiles: products and row indices).
        charge_exchange(cta, 2 * count);

        let seg = block_segmented_reduce(cta, &products, &rows);

        // Complete rows go straight to y (contiguous rows: coalesced-ish).
        cta.write_coalesced(seg.complete.len(), 8);
        (seg.complete, seg.carry)
    });

    // Host-side assembly of the per-CTA outputs (disjoint complete rows).
    let mut carries: Vec<(usize, f64)> = Vec::with_capacity(num_ctas);
    for (complete, carry) in outputs {
        for (logical, sum) in complete {
            y[to_physical(logical)] = sum;
        }
        if let Some(c) = carry {
            carries.push(c);
        }
    }

    // ---- Phase 3: update -------------------------------------------------------
    // Segmented scan over the carries; every carry accumulates into its row.
    let carries_ref = &carries;
    let cfg_upd = LaunchConfig::new(1, cfg.block_threads);
    let (folds, update) = launch_map_named(device, "spmv_update", cfg_upd, |cta| {
        cta.read_coalesced(carries_ref.len(), 12);
        cta.alu(2 * carries_ref.len() as u64);
        cta.scatter(carries_ref.iter().map(|&(r, _)| r), 8);
        carries_ref.clone()
    });
    for (logical, sum) in folds.into_iter().flatten() {
        y[to_physical(logical)] += sum;
    }

    SpmvResult {
        y,
        partition: LaunchStats::default(),
        reduction,
        update,
        compacted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::ops::spmv_ref;
    use mps_sparse::{gen, CooMatrix};
    use proptest::prelude::*;

    fn dev() -> Device {
        Device::titan()
    }

    fn x_for(m: &CsrMatrix) -> Vec<f64> {
        (0..m.num_cols).map(|i| 1.0 + (i % 13) as f64 * 0.5).collect()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
                "row {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_reference_on_paper_matrix() {
        let a = CooMatrix::from_triplets(
            4,
            4,
            [
                (0, 0, 10.0),
                (1, 1, 20.0),
                (1, 2, 30.0),
                (1, 3, 40.0),
                (2, 3, 50.0),
                (3, 1, 60.0),
            ],
        )
        .to_csr();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let r = merge_spmv(&dev(), &a, &x, &SpmvConfig::default());
        assert_eq!(r.y, vec![10.0, 290.0, 200.0, 120.0]);
        assert!(!r.compacted);
    }

    #[test]
    fn rows_spanning_many_ctas_accumulate_via_carries() {
        // One row with far more nonzeros than a CTA tile.
        let cfg = SpmvConfig {
            block_threads: 32,
            items_per_thread: 2,
            force_no_compaction: false,
        };
        let n = 10 * cfg.nv() + 17;
        let mut coo = CooMatrix::new(2, n);
        for c in 0..n {
            coo.push(0, c as u32, 1.0);
        }
        coo.push(1, 0, 5.0);
        let a = coo.to_csr();
        let x = vec![1.0; n];
        let r = merge_spmv(&dev(), &a, &x, &cfg);
        assert_close(&r.y, &[n as f64, 5.0]);
    }

    #[test]
    fn empty_rows_trigger_compaction_and_stay_zero() {
        let a = CooMatrix::from_triplets(6, 6, [(1, 0, 2.0), (4, 5, 3.0)]).to_csr();
        let x = vec![1.0; 6];
        let r = merge_spmv(&dev(), &a, &x, &SpmvConfig::default());
        assert!(r.compacted);
        assert_eq!(r.y, vec![0.0, 2.0, 0.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn forced_raw_path_still_correct_with_empty_rows() {
        let cfg = SpmvConfig {
            force_no_compaction: true,
            ..SpmvConfig::default()
        };
        let a = CooMatrix::from_triplets(6, 6, [(1, 0, 2.0), (4, 5, 3.0)]).to_csr();
        let r = merge_spmv(&dev(), &a, &[1.0; 6], &cfg);
        assert!(!r.compacted);
        assert_eq!(r.y, vec![0.0, 2.0, 0.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn empty_matrix_gives_zero_vector() {
        let a = CsrMatrix::zeros(5, 5);
        let r = merge_spmv(&dev(), &a, &[1.0; 5], &SpmvConfig::default());
        assert_eq!(r.y, vec![0.0; 5]);
        assert_eq!(r.sim_ms(), 0.0);
    }

    #[test]
    fn matches_reference_on_generated_matrices() {
        for m in [
            gen::stencil_5pt(20, 20),
            gen::banded(300, 20.0, 8.0, 60, 1),
            gen::random_uniform(400, 400, 6.0, 4.0, 2),
            gen::power_law(500, 500, 1, 1.5, 200, 3),
        ] {
            let x = x_for(&m);
            let r = merge_spmv(&dev(), &m, &x, &SpmvConfig::default());
            assert_close(&r.y, &spmv_ref(&m, &x));
        }
    }

    #[test]
    fn gflops_positive_for_nontrivial_matrix() {
        let m = gen::stencil_5pt(50, 50);
        let x = x_for(&m);
        let r = merge_spmv(&dev(), &m, &x, &SpmvConfig::default());
        assert!(r.gflops(m.nnz()) > 0.0);
        assert!(r.sim_ms() > 0.0);
    }

    #[test]
    fn plan_reuse_matches_direct_and_skips_partition_cost() {
        let a = gen::banded(500, 20.0, 6.0, 60, 5);
        let x1 = x_for(&a);
        let x2: Vec<f64> = x1.iter().map(|v| v * 2.0 - 1.0).collect();
        let cfg = SpmvConfig::default();

        let plan = SpmvPlan::new(&dev(), &a, &cfg);
        let direct1 = merge_spmv(&dev(), &a, &x1, &cfg);
        let planned1 = plan.execute(&dev(), &a, &x1);
        assert_close(&planned1.y, &direct1.y);
        // The planned run carries no partition cost.
        assert_eq!(planned1.partition.sim_ms, 0.0);
        assert!(direct1.partition.sim_ms > 0.0);

        // Different vector, same plan.
        let planned2 = plan.execute(&dev(), &a, &x2);
        assert_close(&planned2.y, &spmv_ref(&a, &x2));
    }

    #[test]
    fn plan_handles_empty_rows() {
        let a = CooMatrix::from_triplets(8, 8, [(1, 0, 2.0), (6, 7, 3.0)]).to_csr();
        let plan = SpmvPlan::new(&dev(), &a, &SpmvConfig::default());
        assert!(plan.compacted());
        let r = plan.execute(&dev(), &a, &vec![1.0; 8]);
        assert_eq!(r.y, vec![0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "does not match the plan")]
    fn plan_rejects_mismatched_matrix() {
        let a = gen::stencil_5pt(8, 8);
        let b = gen::stencil_5pt(9, 9);
        let plan = SpmvPlan::new(&dev(), &a, &SpmvConfig::default());
        // x sized for the plan so the shape check is what fires.
        plan.execute(&dev(), &b, &vec![1.0; a.num_cols]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_matrices_match_reference(
            rows in 1usize..80,
            cols in 1usize..80,
            density in 0.0f64..0.4,
            seed in 0u64..1000,
            items in 1usize..4,
        ) {
            let avg = density * cols as f64;
            let m = gen::random_uniform(rows, cols, avg, avg / 2.0, seed);
            let x = x_for(&m);
            let cfg = SpmvConfig { block_threads: 32, items_per_thread: items, force_no_compaction: false };
            let r = merge_spmv(&dev(), &m, &x, &cfg);
            let expect = spmv_ref(&m, &x);
            for (a, b) in r.y.iter().zip(&expect) {
                prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())));
            }
        }
    }
}
