//! Merge-path SpMV (Section III-A).
//!
//! Flat decomposition: each CTA processes exactly `nv` nonzeros regardless
//! of row geometry. Three phases:
//!
//! 1. **Partition** — one binary search per CTA boundary into the CSR row
//!    offsets, recording the row containing each CTA's first nonzero in the
//!    auxiliary buffer `S`.
//! 2. **Reduction** — each CTA loads its nonzeros in striped (coalesced)
//!    order, gathers `x`, forms the products, transposes to blocked order
//!    and runs a CTA-wide segmented scan; complete rows are stored to `y`,
//!    and the (possibly row-spanning) trailing partial sum becomes the
//!    CTA's carry in `r`.
//! 3. **Update** — a segmented scan over the carries folds row-spanning
//!    partial sums into `y`.
//!
//! Empty rows: the fast path walks the raw row offsets; when the input has
//! empty rows the kernel adaptively compacts the offsets array first (the
//! paper's "slightly slower method"), charging the extra pass.
//!
//! **Plan/execute split.** Every phase's simulated cost is a function of the
//! sparsity structure alone — the partition boundaries, the row walk, the
//! segment layout and the carry set never depend on the numeric values. A
//! [`SpmvPlan`] therefore charges the full pipeline once at build time and
//! caches the per-phase [`LaunchStats`]; each [`SpmvPlan::execute_into`]
//! afterwards is a pure flat loop over the precomputed maps that reproduces
//! the kernel's floating-point summation order exactly (per-CTA segmented
//! sums, then carry folds in CTA order) without re-simulating any launch —
//! and, given a warmed [`Workspace`], without allocating.

use mps_simt::block::block_segmented_reduce;
use mps_simt::cta::Cta;
use mps_simt::grid::{launch_map_phased, LaunchConfig, LaunchStats};
use mps_simt::{Device, Phase};
use mps_sparse::CsrMatrix;

use crate::config::SpmvConfig;
use crate::error::PlanError;
use crate::partition::MergePartition;
use crate::workspace::Workspace;

pub(crate) use crate::simd::dot_gather;

/// Charge the shared-memory cost of a striped→blocked exchange of `items`
/// register-tile entries (the data itself is already in natural order on
/// the host).
pub(crate) fn charge_exchange(cta: &mut Cta, items: usize) {
    cta.shmem(2 * items as u64);
    cta.sync();
    cta.sync();
}

/// Result of a merge SpMV: the product vector plus per-phase simulated cost.
#[derive(Debug, Clone)]
pub struct SpmvResult {
    pub y: Vec<f64>,
    pub partition: LaunchStats,
    pub reduction: LaunchStats,
    pub update: LaunchStats,
    /// Whether the adaptive empty-row compaction path ran.
    pub compacted: bool,
}

impl SpmvResult {
    /// Total simulated kernel time in milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.partition.sim_ms + self.reduction.sim_ms + self.update.sim_ms
    }

    /// Achieved double-precision GFLOP/s under simulated time, counting the
    /// paper's 2·nnz flops.
    pub fn gflops(&self, nnz: usize) -> f64 {
        if self.sim_ms() == 0.0 {
            return 0.0;
        }
        2.0 * nnz as f64 / (self.sim_ms() * 1e-3) / 1e9
    }
}

/// Precomputed SpMV state: the phase-1 partition (boundary searches plus
/// any empty-row compaction) for a fixed matrix, together with the cached
/// simulated cost of the value-dependent phases.
///
/// Iterative solvers apply the same operator hundreds of times. Everything
/// the simulated pipeline does except the arithmetic itself — partitioning,
/// the row walk, segment layout, carry structure, and therefore the entire
/// cost model — depends only on the sparsity pattern, so a plan pays all of
/// it once: [`SpmvPlan::new`] runs the partition *and* charges the
/// reduction/update phases against the device, and every subsequent
/// [`SpmvPlan::execute`]/[`SpmvPlan::execute_into`] performs only the flat
/// numeric work.
#[derive(Debug, Clone)]
pub struct SpmvPlan {
    cfg: SpmvConfig,
    num_cols: usize,
    /// Shared merge-path partition (phase 1), reused by every execute.
    part: MergePartition,
    /// Cost of the partition boundary searches, paid at plan build.
    pub partition: LaunchStats,
    /// Cost of the empty-row compaction pass (zero on the raw path), paid
    /// at plan build alongside the partition.
    pub fixup: LaunchStats,
    /// Cached cost of the reduction phase (structure-only; charged once).
    reduction: LaunchStats,
    /// Cached cost of the update phase (structure-only; charged once).
    update: LaunchStats,
    /// Physical rows the walk never assigns (empty or carry-only); the
    /// executor zeroes exactly these instead of the whole output.
    prezero: Vec<u32>,
}

impl SpmvPlan {
    /// Non-panicking [`SpmvPlan::new`]: validates the configuration and
    /// returns [`PlanError`] instead of asserting.
    pub fn try_new(
        device: &Device,
        a: &CsrMatrix,
        cfg: &SpmvConfig,
    ) -> Result<SpmvPlan, PlanError> {
        if cfg.block_threads == 0 {
            return Err(PlanError::InvalidConfig("block_threads must be nonzero"));
        }
        if cfg.items_per_thread == 0 {
            return Err(PlanError::InvalidConfig("items_per_thread must be nonzero"));
        }
        Ok(SpmvPlan::new(device, a, cfg))
    }

    /// Build the partition for `a` (phase 1 of Section III-A) and charge
    /// the value-independent cost of the remaining phases.
    pub fn new(device: &Device, a: &CsrMatrix, cfg: &SpmvConfig) -> SpmvPlan {
        let mut part = MergePartition::build(device, a, cfg.nv(), cfg.force_no_compaction);
        let partition = std::mem::take(&mut part.stats);
        let fixup = std::mem::take(&mut part.fixup);
        let prezero = part.unassigned_physical_rows();
        let mut plan = SpmvPlan {
            cfg: *cfg,
            num_cols: a.num_cols,
            part,
            partition,
            fixup,
            reduction: LaunchStats::default(),
            update: LaunchStats::default(),
            prezero,
        };
        if plan.part.nnz > 0 {
            let (reduction, update) = plan.charge_numeric_phases(device, a);
            plan.reduction = reduction;
            plan.update = update;
        }
        plan
    }

    /// Whether the adaptive empty-row compaction path ran.
    pub fn compacted(&self) -> bool {
        self.part.compacted()
    }

    /// The shared merge-path partition underlying this plan.
    pub fn partition_structure(&self) -> &MergePartition {
        &self.part
    }

    /// Cached simulated cost of the reduction phase.
    pub fn reduction_stats(&self) -> &LaunchStats {
        &self.reduction
    }

    /// Cached simulated cost of the update phase.
    pub fn update_stats(&self) -> &LaunchStats {
        &self.update
    }

    /// Simulated milliseconds of one planned execution (reduction + update).
    pub fn execute_sim_ms(&self) -> f64 {
        self.reduction.sim_ms + self.update.sim_ms
    }

    /// Simulated milliseconds paid once at plan build (partition searches
    /// plus any empty-row compaction).
    pub fn build_sim_ms(&self) -> f64 {
        self.partition.sim_ms + self.fixup.sim_ms
    }

    /// Simulate the reduction and update phases once, charging the device
    /// with exactly the traffic of the original per-call kernels. The
    /// numeric outputs are discarded — only the structure (segment layout,
    /// carry set) and the cost survive in the plan.
    fn charge_numeric_phases(&self, device: &Device, a: &CsrMatrix) -> (LaunchStats, LaunchStats) {
        let nnz = self.part.nnz;
        let nv = self.cfg.nv();
        let num_ctas = self.part.num_ctas();
        let offsets_ref = &self.part.offsets;
        let part = &self.part;

        // ---- Phase 2: reduction -----------------------------------------
        let cfg_red = LaunchConfig::new(num_ctas, self.cfg.block_threads);
        let (outputs, reduction) =
            launch_map_phased(device, "spmv_reduce", Phase::Reduction, cfg_red, |cta| {
                let lo = cta.cta_id * nv;
                let hi = (lo + nv).min(nnz);
                let count = hi - lo;
                let (row_lo, row_hi) = part.cta_row_range(cta.cta_id);

                // Row offsets for the CTA's rows into shared memory.
                cta.read_coalesced(row_hi - row_lo + 2, 8);
                cta.shmem((row_hi - row_lo + 2) as u64);

                // Strided loads of column indices and values (coalesced).
                cta.read_coalesced(count, 4); // col_idx
                cta.read_coalesced(count, 8); // values

                // Gather x by column index: the data-dependent access.
                cta.gather(a.col_idx[lo..hi].iter().map(|&c| c as usize), 8);

                // Form products (one multiply per item — the 2·nnz flops
                // together with the adds inside the segmented reduction).
                cta.alu(count as u64);

                // Expand logical row ids by walking the shared offsets.
                let mut rows = Vec::with_capacity(count);
                let mut r = row_lo;
                cta.alu(count as u64);
                for item in lo..hi {
                    while r < row_hi && offsets_ref[r + 1] <= item {
                        r += 1;
                    }
                    rows.push(r);
                }

                // On hardware the strided register tile is transposed to
                // blocked order through shared memory before the scan; the
                // exchange covers two tiles (products and row indices).
                charge_exchange(cta, 2 * count);

                // Values are irrelevant to both structure and cost; segment
                // layout comes from the row expansion alone.
                let zeros = vec![0.0f64; count];
                let seg = block_segmented_reduce(cta, &zeros, &rows);

                // Complete rows go straight to y (contiguous rows: coalesced-ish).
                cta.write_coalesced(seg.complete.len(), 8);
                seg.carry.map(|(row, _)| row)
            });

        let carry_rows: Vec<usize> = outputs.into_iter().flatten().collect();

        // ---- Phase 3: update --------------------------------------------
        let carries_ref = &carry_rows;
        let cfg_upd = LaunchConfig::new(1, self.cfg.block_threads);
        let (_, update) = launch_map_phased(device, "spmv_update", Phase::Update, cfg_upd, |cta| {
            cta.read_coalesced(carries_ref.len(), 12);
            cta.alu(2 * carries_ref.len() as u64);
            cta.scatter(carries_ref.iter().copied(), 8);
        });
        (reduction, update)
    }

    /// The numeric phases as pure flat loops: per-CTA fused product-and-
    /// segmented-sum (bitwise identical to the simulated kernel's grouping:
    /// products accumulate in item order within each row segment), complete
    /// rows assigned, trailing partials folded as carries in CTA order.
    fn numeric_execute(
        &self,
        a: &CsrMatrix,
        x: &[f64],
        y: &mut [f64],
        carries: &mut Vec<(usize, f64)>,
    ) {
        // Zero only the rows the walk below will not assign (empty rows
        // and carry-only rows, precomputed at plan build); every other
        // row is overwritten by a complete-segment assignment, so the
        // result is identical to a full zero-fill for any prior `y`
        // contents — without streaming the whole output twice.
        for &r in self.prezero.iter() {
            y[r as usize] = 0.0;
        }
        spmv_segment_walk(&self.part, self.cfg.nv(), a, x, y, carries);
    }

    /// Swap the numeric values of the planned matrix in place without
    /// re-partitioning. The partition, segment layout, carry structure and
    /// cached phase costs are all pattern-only, so a value swap leaves the
    /// plan fully valid: the next [`SpmvPlan::execute`] computes with the
    /// new values at replay cost.
    ///
    /// Errors (leaving `a` untouched) if `a` does not carry the planned
    /// pattern or `values` is not one value per planned nonzero.
    pub fn update_values(&self, a: &mut CsrMatrix, values: Vec<f64>) -> Result<(), PlanError> {
        let expected = (self.part.num_rows, self.num_cols, self.part.nnz);
        let got = (a.num_rows, a.num_cols, a.nnz());
        if expected != got {
            return Err(PlanError::PatternMismatch { expected, got });
        }
        if values.len() != self.part.nnz {
            return Err(PlanError::ValueLengthMismatch {
                expected: self.part.nnz,
                got: values.len(),
            });
        }
        a.values = values;
        Ok(())
    }

    fn check_inputs(&self, a: &CsrMatrix, x: &[f64]) {
        assert_eq!(x.len(), self.num_cols, "x length must equal num_cols");
        assert_eq!(
            (a.num_rows, a.num_cols, a.nnz()),
            (self.part.num_rows, self.num_cols, self.part.nnz),
            "matrix does not match the plan"
        );
    }

    /// Run the reduction + update phases against the planned matrix.
    ///
    /// Convenience wrapper over [`SpmvPlan::execute_into`] that allocates
    /// the output vector and clones the cached phase stats. `device` is
    /// unused beyond API symmetry — the cost was charged at plan build.
    ///
    /// # Panics
    /// Panics if `a` does not match the planned matrix's shape/nnz or `x`
    /// has the wrong length.
    pub fn execute(&self, _device: &Device, a: &CsrMatrix, x: &[f64]) -> SpmvResult {
        self.check_inputs(a, x);
        let mut y = vec![0.0; self.part.num_rows];
        let mut carries = Vec::new();
        self.numeric_execute(a, x, &mut y, &mut carries);
        SpmvResult {
            y,
            partition: LaunchStats::default(),
            reduction: self.reduction.clone(),
            update: self.update.clone(),
            compacted: self.compacted(),
        }
    }

    /// Steady-state execution: write `y = A·x` into a caller-owned buffer
    /// using workspace scratch, returning the simulated milliseconds of the
    /// numeric phases (from the plan's cached stats).
    ///
    /// After one warm-up call with the same `y`/`ws`, this performs no heap
    /// allocation.
    ///
    /// # Panics
    /// Panics if `a` does not match the planned matrix's shape/nnz or `x`
    /// has the wrong length.
    pub fn execute_into(
        &self,
        a: &CsrMatrix,
        x: &[f64],
        y: &mut Vec<f64>,
        ws: &mut Workspace,
    ) -> f64 {
        self.check_inputs(a, x);
        // Size only: `numeric_execute` zero-fills, so a correctly sized
        // warm buffer skips the redundant resize-time zeroing.
        if y.len() != self.part.num_rows {
            y.clear();
            y.resize(self.part.num_rows, 0.0);
        }
        let mut carries = ws.take_carries();
        self.numeric_execute(a, x, y, &mut carries);
        ws.put_carries(carries);
        self.execute_sim_ms()
    }
}

/// The planned-SpMV numeric walk over one CTA partition: per-CTA gathered
/// segment dots (products folding in item order from 0.0), complete rows
/// assigned through `part`'s logical→physical map, trailing partials
/// folded as carries in CTA order after all CTAs.
///
/// Shared by [`SpmvPlan`] and the `k == 1` degenerate path of
/// [`crate::spmm::SpmmPlan`]: both execute this *single instantiation*
/// (`#[inline(never)]` pins one copy), so a single-column SpMM is the
/// planned SpMV — the same machine code, the same bits, the same cost.
/// Callers pre-zero the rows the walk never assigns (see
/// [`MergePartition::unassigned_physical_rows`]).
#[inline(never)]
pub(crate) fn spmv_segment_walk(
    part: &MergePartition,
    nv: usize,
    a: &CsrMatrix,
    x: &[f64],
    y: &mut [f64],
    carries: &mut Vec<(usize, f64)>,
) {
    carries.clear();
    let nnz = part.nnz;
    if nnz == 0 {
        return;
    }
    let num_ctas = part.num_ctas();
    let offsets = &part.offsets;

    for cta_id in 0..num_ctas {
        let lo = cta_id * nv;
        let hi = (lo + nv).min(nnz);
        let (row_lo, row_hi) = part.cta_row_range(cta_id);
        let mut r = row_lo;
        let mut i = lo;
        // Segment-wise walk: one gathered dot per (row × tile)
        // intersection instead of a row test per nonzero. Bitwise
        // identical to the per-item walk — each segment's products
        // fold in item order from 0.0, rows with no items in the tile
        // produce no segment, and the tile's trailing segment always
        // becomes the CTA carry (even when the row ends exactly at the
        // tile boundary).
        while i < hi {
            while r < row_hi && offsets[r + 1] <= i {
                r += 1;
            }
            let seg_end = if r < row_hi {
                offsets[r + 1].min(hi)
            } else {
                hi
            };
            let acc = dot_gather(&a.values[i..seg_end], &a.col_idx[i..seg_end], x);
            if seg_end == hi {
                carries.push((r, acc));
            } else {
                y[part.to_physical(r)] = acc;
            }
            i = seg_end;
        }
    }

    for &(logical, sum) in carries.iter() {
        y[part.to_physical(logical)] += sum;
    }
}

/// y = A·x with the merge-path flat decomposition.
///
/// # Panics
/// Panics if `x.len() != a.num_cols`.
pub fn merge_spmv(device: &Device, a: &CsrMatrix, x: &[f64], cfg: &SpmvConfig) -> SpmvResult {
    let plan = SpmvPlan::new(device, a, cfg);
    let mut result = plan.execute(device, a, x);
    result.partition = plan.partition;
    result.partition.add(&plan.fixup);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::ops::spmv_ref;
    use mps_sparse::{gen, CooMatrix};
    use proptest::prelude::*;

    fn dev() -> Device {
        Device::titan()
    }

    fn x_for(m: &CsrMatrix) -> Vec<f64> {
        (0..m.num_cols)
            .map(|i| 1.0 + (i % 13) as f64 * 0.5)
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
                "row {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_reference_on_paper_matrix() {
        let a = CooMatrix::from_triplets(
            4,
            4,
            [
                (0, 0, 10.0),
                (1, 1, 20.0),
                (1, 2, 30.0),
                (1, 3, 40.0),
                (2, 3, 50.0),
                (3, 1, 60.0),
            ],
        )
        .to_csr();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let r = merge_spmv(&dev(), &a, &x, &SpmvConfig::default());
        assert_eq!(r.y, vec![10.0, 290.0, 200.0, 120.0]);
        assert!(!r.compacted);
    }

    #[test]
    fn warm_dirty_output_buffer_is_bitwise_clean() {
        // The targeted pre-zero must make any prior `y` contents
        // invisible: scribble NaN over the warm buffer between executions
        // and demand bitwise equality with the fresh result. Small CTAs
        // put row ends on tile boundaries (the carry-only pre-zero set);
        // the COO matrix adds empty rows (the compaction path).
        let cfg = SpmvConfig {
            block_threads: 32,
            items_per_thread: 2,
            force_no_compaction: false,
        };
        for m in [
            gen::random_uniform(400, 400, 6.0, 3.0, 13),
            CooMatrix::from_triplets(40, 40, [(2, 1, 2.5), (25, 39, -1.0), (26, 0, 4.0)]).to_csr(),
        ] {
            let x = x_for(&m);
            let plan = SpmvPlan::new(&dev(), &m, &cfg);
            let mut ws = Workspace::new();
            let mut y = Vec::new();
            plan.execute_into(&m, &x, &mut y, &mut ws);
            let fresh = y.clone();
            y.iter_mut().for_each(|v| *v = f64::NAN);
            plan.execute_into(&m, &x, &mut y, &mut ws);
            assert!(
                fresh
                    .iter()
                    .zip(&y)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "dirty warm buffer changed the result"
            );
        }
    }

    #[test]
    fn rows_spanning_many_ctas_accumulate_via_carries() {
        // One row with far more nonzeros than a CTA tile.
        let cfg = SpmvConfig {
            block_threads: 32,
            items_per_thread: 2,
            force_no_compaction: false,
        };
        let n = 10 * cfg.nv() + 17;
        let mut coo = CooMatrix::new(2, n);
        for c in 0..n {
            coo.push(0, c as u32, 1.0);
        }
        coo.push(1, 0, 5.0);
        let a = coo.to_csr();
        let x = vec![1.0; n];
        let r = merge_spmv(&dev(), &a, &x, &cfg);
        assert_close(&r.y, &[n as f64, 5.0]);
    }

    #[test]
    fn empty_rows_trigger_compaction_and_stay_zero() {
        let a = CooMatrix::from_triplets(6, 6, [(1, 0, 2.0), (4, 5, 3.0)]).to_csr();
        let x = vec![1.0; 6];
        let r = merge_spmv(&dev(), &a, &x, &SpmvConfig::default());
        assert!(r.compacted);
        assert_eq!(r.y, vec![0.0, 2.0, 0.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn forced_raw_path_still_correct_with_empty_rows() {
        let cfg = SpmvConfig {
            force_no_compaction: true,
            ..SpmvConfig::default()
        };
        let a = CooMatrix::from_triplets(6, 6, [(1, 0, 2.0), (4, 5, 3.0)]).to_csr();
        let r = merge_spmv(&dev(), &a, &[1.0; 6], &cfg);
        assert!(!r.compacted);
        assert_eq!(r.y, vec![0.0, 2.0, 0.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn empty_matrix_gives_zero_vector() {
        let a = CsrMatrix::zeros(5, 5);
        let r = merge_spmv(&dev(), &a, &[1.0; 5], &SpmvConfig::default());
        assert_eq!(r.y, vec![0.0; 5]);
        assert_eq!(r.sim_ms(), 0.0);
    }

    #[test]
    fn matches_reference_on_generated_matrices() {
        for m in [
            gen::stencil_5pt(20, 20),
            gen::banded(300, 20.0, 8.0, 60, 1),
            gen::random_uniform(400, 400, 6.0, 4.0, 2),
            gen::power_law(500, 500, 1, 1.5, 200, 3),
        ] {
            let x = x_for(&m);
            let r = merge_spmv(&dev(), &m, &x, &SpmvConfig::default());
            assert_close(&r.y, &spmv_ref(&m, &x));
        }
    }

    #[test]
    fn gflops_positive_for_nontrivial_matrix() {
        let m = gen::stencil_5pt(50, 50);
        let x = x_for(&m);
        let r = merge_spmv(&dev(), &m, &x, &SpmvConfig::default());
        assert!(r.gflops(m.nnz()) > 0.0);
        assert!(r.sim_ms() > 0.0);
    }

    #[test]
    fn plan_reuse_matches_direct_and_skips_partition_cost() {
        let a = gen::banded(500, 20.0, 6.0, 60, 5);
        let x1 = x_for(&a);
        let x2: Vec<f64> = x1.iter().map(|v| v * 2.0 - 1.0).collect();
        let cfg = SpmvConfig::default();

        let plan = SpmvPlan::new(&dev(), &a, &cfg);
        let direct1 = merge_spmv(&dev(), &a, &x1, &cfg);
        let planned1 = plan.execute(&dev(), &a, &x1);
        assert_close(&planned1.y, &direct1.y);
        // The planned run carries no partition cost.
        assert_eq!(planned1.partition.sim_ms, 0.0);
        assert!(direct1.partition.sim_ms > 0.0);

        // Different vector, same plan.
        let planned2 = plan.execute(&dev(), &a, &x2);
        assert_close(&planned2.y, &spmv_ref(&a, &x2));
    }

    #[test]
    fn execute_into_is_bitwise_identical_to_one_shot() {
        for m in [
            gen::banded(400, 15.0, 6.0, 50, 9),
            gen::power_law(300, 300, 1, 1.5, 120, 4),
            // Empty rows: the compaction path.
            CooMatrix::from_triplets(50, 50, [(3, 1, 2.5), (30, 49, -1.0), (31, 0, 4.0)]).to_csr(),
        ] {
            let x = x_for(&m);
            let one_shot = merge_spmv(&dev(), &m, &x, &SpmvConfig::default());
            let plan = SpmvPlan::new(&dev(), &m, &SpmvConfig::default());
            let mut ws = Workspace::new();
            let mut y = Vec::new();
            let ms = plan.execute_into(&m, &x, &mut y, &mut ws);
            assert_eq!(y, one_shot.y, "planned result must be byte-identical");
            assert!((ms - (one_shot.reduction.sim_ms + one_shot.update.sim_ms)).abs() < 1e-12);
            // Re-run with the warmed workspace: still identical.
            plan.execute_into(&m, &x, &mut y, &mut ws);
            assert_eq!(y, one_shot.y);
        }
    }

    #[test]
    fn cached_numeric_stats_match_legacy_per_call_charges() {
        // The build-time charge must equal what the per-call kernels used
        // to charge: nonzero reduction cost, nonzero update cost when rows
        // span tiles, and identical totals between two identical plans.
        let a = gen::random_uniform(600, 600, 8.0, 4.0, 13);
        let cfg = SpmvConfig::default();
        let p1 = SpmvPlan::new(&dev(), &a, &cfg);
        let p2 = SpmvPlan::new(&dev(), &a, &cfg);
        assert!(p1.reduction_stats().sim_ms > 0.0);
        assert_eq!(p1.reduction_stats().sim_ms, p2.reduction_stats().sim_ms);
        assert_eq!(p1.update_stats().sim_ms, p2.update_stats().sim_ms);
        assert_eq!(
            p1.reduction_stats().totals.dram_read_bytes,
            p2.reduction_stats().totals.dram_read_bytes
        );
        assert!(p1.execute_sim_ms() > 0.0);
    }

    #[test]
    fn plan_handles_empty_rows() {
        let a = CooMatrix::from_triplets(8, 8, [(1, 0, 2.0), (6, 7, 3.0)]).to_csr();
        let plan = SpmvPlan::new(&dev(), &a, &SpmvConfig::default());
        assert!(plan.compacted());
        let r = plan.execute(&dev(), &a, &[1.0; 8]);
        assert_eq!(r.y, vec![0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn update_values_matches_fresh_plan_bitwise_and_validates() {
        let a0 = gen::random_uniform(200, 200, 6.0, 3.0, 21);
        let plan = SpmvPlan::new(&dev(), &a0, &SpmvConfig::default());
        let x = x_for(&a0);
        let mut a = a0.clone();
        let new_vals: Vec<f64> = a0.values.iter().map(|v| v * 1.5 + 0.25).collect();
        plan.update_values(&mut a, new_vals).expect("same pattern");
        let swapped = plan.execute(&dev(), &a, &x);
        let fresh = SpmvPlan::new(&dev(), &a, &SpmvConfig::default()).execute(&dev(), &a, &x);
        assert!(
            swapped
                .y
                .iter()
                .zip(&fresh.y)
                .all(|(p, q)| p.to_bits() == q.to_bits()),
            "value swap must replay bitwise identically to a fresh plan"
        );
        assert!(matches!(
            plan.update_values(&mut a, vec![0.0; 3]),
            Err(PlanError::ValueLengthMismatch {
                expected: _,
                got: 3
            })
        ));
        let mut b = gen::stencil_5pt(9, 9);
        let n = b.nnz();
        assert!(matches!(
            plan.update_values(&mut b, vec![0.0; n]),
            Err(PlanError::PatternMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "does not match the plan")]
    fn plan_rejects_mismatched_matrix() {
        let a = gen::stencil_5pt(8, 8);
        let b = gen::stencil_5pt(9, 9);
        let plan = SpmvPlan::new(&dev(), &a, &SpmvConfig::default());
        // x sized for the plan so the shape check is what fires.
        plan.execute(&dev(), &b, &vec![1.0; a.num_cols]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_matrices_match_reference(
            rows in 1usize..80,
            cols in 1usize..80,
            density in 0.0f64..0.4,
            seed in 0u64..1000,
            items in 1usize..4,
        ) {
            let avg = density * cols as f64;
            let m = gen::random_uniform(rows, cols, avg, avg / 2.0, seed);
            let x = x_for(&m);
            let cfg = SpmvConfig { block_threads: 32, items_per_thread: items, force_no_compaction: false };
            let r = merge_spmv(&dev(), &m, &x, &cfg);
            let expect = spmv_ref(&m, &x);
            for (a, b) in r.y.iter().zip(&expect) {
                prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())));
            }
        }
    }
}
