//! Runtime-dispatched inner numeric kernels for the host execute paths.
//!
//! The flat numeric loops behind [`crate::spmv::SpmvPlan`] and
//! [`crate::spmm::SpmmPlan`] spend essentially all of their time in three
//! small routines: a gathered dot over one nonzero segment (SpMV), its
//! strided variant (width-1 SpMM tiles), and a `w`-wide lane accumulation
//! (SpMM tiles). Each has a single scalar body, written once with
//! `#[inline(always)]`, and two monomorphic entry points: the portable
//! build and — on x86-64 with AVX2 at runtime — a copy compiled under
//! `#[target_feature(enable = "avx2")]` so the autovectorizer may use
//! 256-bit lanes.
//!
//! **Bitwise invariance.** Dispatch never changes results: every variant
//! performs the identical sequence of IEEE-754 multiplies and adds (the
//! simulated kernel's summation order — products in item order, folds from
//! 0.0), and Rust never contracts a `mul` + `add` into a fused
//! multiply-add, so vector width only changes how many independent lanes
//! retire per cycle, not what any lane computes. The
//! `dispatched_kernels_match_portable_bits` test pins this on hardware
//! where both paths exist.

/// True when the AVX2 entry points are safe to call. The std detection
/// macro caches its answer in an atomic, so dispatch costs a relaxed
/// load and a predictable branch.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
pub(crate) fn have_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// True when the AVX-512F entry points are safe to call. The wide SpMM
/// tiles want it badly: a 64-lane accumulator is eight zmm registers,
/// where 256-bit code must spill half its sixteen ymm names every nonzero.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
pub(crate) fn have_avx512() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
}

// ---------------------------------------------------------------------------
// Scalar bodies (compiled once per dispatch wrapper, under its features).
// ---------------------------------------------------------------------------

/// Gathered dot product over one contiguous nonzero segment. Multiplies
/// are formed in independent 8-wide chunks so the compiler can pipeline
/// the loads and muls; the adds fold strictly in item order from 0.0,
/// which is the exact summation order of the simulated kernel's
/// per-segment reduction — the result is bitwise identical to the naive
/// per-item loop.
#[inline(always)]
fn dot_gather_impl(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    const W: usize = 8;
    let mut acc = 0.0f64;
    let mut vc = vals.chunks_exact(W);
    let mut cc = cols.chunks_exact(W);
    for (v, c) in (&mut vc).zip(&mut cc) {
        let mut prod = [0.0f64; W];
        for t in 0..W {
            prod[t] = v[t] * x[c[t] as usize];
        }
        for &p in &prod {
            acc += p;
        }
    }
    for (v, &c) in vc.remainder().iter().zip(cc.remainder()) {
        acc += v * x[c as usize];
    }
    acc
}

/// Strided gathered dot for a width-1 column tile: operand element for
/// nonzero `j` lives at `x[cols[j] * k + col0]`. Same chunked-multiply /
/// in-order-add structure as [`dot_gather`], so a single-column tile
/// costs what a planned SpMV segment costs and the bits match it exactly.
///
/// Callers dispatch at the tile-walk level (see `SpmmPlan`), so this body
/// inlines into whichever feature context the walk was compiled under.
#[inline(always)]
pub(crate) fn dot_gather_strided_impl(
    vals: &[f64],
    cols: &[u32],
    x: &[f64],
    k: usize,
    col0: usize,
) -> f64 {
    const W: usize = 8;
    let mut acc = 0.0f64;
    let mut vc = vals.chunks_exact(W);
    let mut cc = cols.chunks_exact(W);
    for (v, c) in (&mut vc).zip(&mut cc) {
        let mut prod = [0.0f64; W];
        for t in 0..W {
            prod[t] = v[t] * x[c[t] as usize * k + col0];
        }
        for &p in &prod {
            acc += p;
        }
    }
    for (v, &c) in vc.remainder().iter().zip(cc.remainder()) {
        acc += v * x[c as usize * k + col0];
    }
    acc
}

/// Width-`W` gathered segment dot: each nonzero's value multiplies a
/// contiguous `W`-wide run of its operand row, folding into `W` lane
/// accumulators in item order from 0.0 — per lane this is exactly the
/// scalar segment walk, so the width specialization never changes a bit.
/// The const width keeps the accumulators in registers and fully unrolls
/// the lane loop; a runtime-width loop re-checks bounds and accumulator
/// aliasing on every nonzero.
#[inline(always)]
fn seg_dot_wide_impl<const W: usize>(
    vals: &[f64],
    cols: &[u32],
    x: &[f64],
    k: usize,
    col0: usize,
) -> [f64; W] {
    // Gathered rows are invisible to hardware prefetchers (the next row's
    // address comes from `cols`, not a stride), so issue software
    // prefetches for the row PF nonzeros ahead. Pure hint: no memory is
    // read, results are unchanged; it only matters when the operand block
    // has spilled to L3 (large n·k).
    #[cfg(target_arch = "x86_64")]
    const PF: usize = 6;
    let mut acc = [0.0f64; W];
    if vals.is_empty() {
        return acc;
    }
    // One check per segment so the clamp below can never underflow.
    assert!(x.len() >= W, "operand shorter than tile width");
    let lim = x.len() - W;
    for (j, (&v, &c)) in vals.iter().zip(cols).enumerate() {
        // Only wide tiles prefetch: a 32+-lane operand block (n·k ≥ L2)
        // misses to L3/DRAM, while narrow tiles are cache-resident and
        // the extra prefetch µops would only cost issue slots.
        #[cfg(target_arch = "x86_64")]
        if W >= 32 {
            if let Some(&cf) = cols.get(j + PF) {
                let row = (cf as usize * k + col0).min(lim);
                // SAFETY: `row + W <= x.len()` by the clamp, and prefetch
                // itself has no observable effect on memory.
                unsafe {
                    use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                    let p = x.as_ptr().add(row) as *const i8;
                    let mut off = 0usize;
                    while off < W {
                        _mm_prefetch::<_MM_HINT_T0>(p.add(off * 8));
                        off += 8;
                    }
                }
            }
        }
        // Branchless slice bound: clamping the start index into range
        // replaces the per-nonzero panic branch with one `min`, keeping
        // the gathered loads off the checked-index dependency chain. For
        // any well-formed operator (`cols[j] < x.len() / k`, which plan
        // construction requires) the clamp never engages and results are
        // identical; a corrupted index reads in-bounds garbage instead of
        // panicking.
        let start = (c as usize * k + col0).min(lim);
        // SAFETY: `start + W <= x.len()` by the clamp above.
        let xrow = unsafe { x.get_unchecked(start..start + W) };
        for t in 0..W {
            acc[t] += v * xrow[t];
        }
    }
    acc
}

/// One segment's `out.len()`-wide lane sums, dispatched to a const-width
/// kernel for the widths the tiler produces in practice; any other width
/// takes the generic runtime-width loop (bitwise identical, just slower).
///
/// Callers dispatch at the tile-walk level (see `SpmmPlan`), so this body
/// inlines into whichever feature context the walk was compiled under.
#[inline(always)]
pub(crate) fn seg_dot_impl(
    vals: &[f64],
    cols: &[u32],
    x: &[f64],
    k: usize,
    col0: usize,
    out: &mut [f64],
) {
    match out.len() {
        2 => out.copy_from_slice(&seg_dot_wide_impl::<2>(vals, cols, x, k, col0)),
        4 => out.copy_from_slice(&seg_dot_wide_impl::<4>(vals, cols, x, k, col0)),
        8 => out.copy_from_slice(&seg_dot_wide_impl::<8>(vals, cols, x, k, col0)),
        16 => out.copy_from_slice(&seg_dot_wide_impl::<16>(vals, cols, x, k, col0)),
        32 => out.copy_from_slice(&seg_dot_wide_impl::<32>(vals, cols, x, k, col0)),
        64 => out.copy_from_slice(&seg_dot_wide_impl::<64>(vals, cols, x, k, col0)),
        w => {
            out.fill(0.0);
            for (&v, &c) in vals.iter().zip(cols) {
                let xrow = &x[c as usize * k + col0..][..w];
                for (s, &xj) in out.iter_mut().zip(xrow) {
                    *s += v * xj;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 copies of the bodies.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_gather_avx2(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    dot_gather_impl(vals, cols, x)
}

// ---------------------------------------------------------------------------
// Dispatched entry points.
// ---------------------------------------------------------------------------

/// See [`dot_gather_impl`]; runs the AVX2 copy when the CPU has it.
#[inline]
pub(crate) fn dot_gather(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { dot_gather_avx2(vals, cols, x) };
    }
    dot_gather_impl(vals, cols, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(n: usize, k: usize, seed: u64) -> (Vec<f64>, Vec<u32>, Vec<f64>) {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        };
        let ncols = 97usize;
        let vals: Vec<f64> = (0..n)
            .map(|_| (next() % 2000) as f64 / 1000.0 - 1.0)
            .collect();
        let cols: Vec<u32> = (0..n).map(|_| (next() % ncols as u64) as u32).collect();
        let x: Vec<f64> = (0..ncols * k)
            .map(|_| (next() % 2000) as f64 / 999.0 - 1.0)
            .collect();
        (vals, cols, x)
    }

    #[test]
    fn dispatched_kernels_match_portable_bits() {
        // On hardware with AVX2 this compares two different codegens of
        // the same arithmetic; elsewhere it degenerates to self-equality.
        // Segment lengths cross the 8-chunk boundary both ways.
        for n in [0usize, 1, 5, 8, 17, 200] {
            let (vals, cols, x) = fixture(n, 1, 0x9e3779b97f4a7c15 ^ n as u64);
            assert_eq!(
                dot_gather(&vals, &cols, &x).to_bits(),
                dot_gather_impl(&vals, &cols, &x).to_bits(),
                "dot_gather n={n}"
            );
        }
        for k in [3usize, 16] {
            for col0 in [0usize, 2] {
                let (vals, cols, x) = fixture(33, k, 7 + k as u64);
                // The strided dot must agree with the plain dot on a
                // column extracted to unit stride.
                let col: Vec<f64> = (0..x.len() / k).map(|r| x[r * k + col0]).collect();
                assert_eq!(
                    dot_gather_strided_impl(&vals, &cols, &x, k, col0).to_bits(),
                    dot_gather_impl(&vals, &cols, &col).to_bits(),
                    "strided k={k} col0={col0}"
                );
            }
        }
    }

    #[test]
    fn seg_dot_widths_agree_with_scalar_lanes() {
        // Every lane of the wide kernel must equal the strided scalar dot
        // on that lane — the invariant the SpMM tile walk is built on.
        for w in [2usize, 4, 5, 8, 16, 64] {
            let (vals, cols, x) = fixture(29, w, 999 + w as u64);
            let mut wide = vec![0.0f64; w];
            seg_dot_impl(&vals, &cols, &x, w, 0, &mut wide);
            for (t, &got) in wide.iter().enumerate() {
                let lane = dot_gather_strided_impl(&vals, &cols, &x, w, t);
                assert_eq!(got.to_bits(), lane.to_bits(), "w={w} lane {t}");
            }
        }
    }
}
