//! SpGEMM setup phase (the "Setup" bar of Figure 11).
//!
//! For every nonzero `A[i,k]` the expansion will touch the whole row `k` of
//! `B`, contributing `|B_row(k)|` intermediate products. The setup phase
//! scans those counts into the segmented prefix sum `S` used to partition
//! the product space, and expands `A`'s row index per nonzero (needed to
//! form output row coordinates during expansion).

use mps_simt::block::load_balance_search;
use mps_simt::grid::{launch_map_phased, LaunchConfig, LaunchStats};
use mps_simt::{Device, Phase};
use mps_sparse::CsrMatrix;

/// Product-space description shared by every later phase.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// Exclusive prefix sum of per-A-nonzero product counts
    /// (`len == |A| + 1`; last entry is the total number of products).
    pub s: Vec<usize>,
    /// Row of A owning each A nonzero.
    pub a_row_of_nnz: Vec<u32>,
    /// Total intermediate products (the paper's work measure, Figure 10).
    pub products: usize,
}

/// Build the product-space map for `A·B`.
pub fn setup(device: &Device, a: &CsrMatrix, b: &CsrMatrix) -> (Expansion, LaunchStats) {
    assert_eq!(a.num_cols, b.num_rows, "inner dimensions must agree");
    let nnz = a.nnz();

    let mut s = Vec::with_capacity(nnz + 1);
    s.push(0usize);
    for &k in &a.col_idx {
        s.push(s.last().expect("non-empty") + b.row_len(k as usize));
    }
    let mut a_row_of_nnz = Vec::with_capacity(nnz);
    for r in 0..a.num_rows {
        a_row_of_nnz.extend(std::iter::repeat_n(r as u32, a.row_len(r)));
    }

    // Charge the device cost: stream A's column indices, gather the two
    // B row offsets bounding each referenced row, scan, write S.
    let nv = 2048;
    let cfg = LaunchConfig::new(nnz.div_ceil(nv).max(1), 128);
    let (_, stats) = launch_map_phased(device, "spgemm_setup", Phase::Setup, cfg, |cta| {
        let lo = cta.cta_id * nv;
        let hi = (lo + nv).min(nnz);
        cta.read_coalesced(hi - lo, 4);
        cta.gather(a.col_idx[lo..hi].iter().map(|&k| k as usize), 8);
        cta.alu(3 * (hi - lo) as u64);
        cta.shmem(2 * (hi - lo) as u64);
        cta.sync();
        cta.write_coalesced(hi - lo, 8);
    });

    let products = *s.last().expect("non-empty");
    (
        Expansion {
            s,
            a_row_of_nnz,
            products,
        },
        stats,
    )
}

impl Expansion {
    /// Walk the products `lo..hi`, invoking `f(q, j, t)` for global product
    /// index `q`, owning A-nonzero `j`, and offset `t` within B's row.
    ///
    /// The visit order is the expansion order of the paper: products follow
    /// A's storage order (row-major, columns ascending), and within one A
    /// nonzero follow B's column order — so emitted (row,col) coordinates
    /// are non-decreasing in row.
    pub fn walk_tile(
        &self,
        cta: &mut mps_simt::cta::Cta,
        lo: usize,
        hi: usize,
        f: impl FnMut(usize, usize, usize),
    ) {
        // The load-balancing search over the product prefix sum: one
        // binary search finds the first A nonzero, then the cursor
        // advances monotonically through the tile.
        load_balance_search(cta, &self.s, lo, hi, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::CooMatrix;

    fn dev() -> Device {
        Device::titan()
    }

    fn paper_a() -> CsrMatrix {
        CooMatrix::from_triplets(
            4,
            4,
            [
                (0, 0, 10.0),
                (1, 1, 20.0),
                (1, 2, 30.0),
                (1, 3, 40.0),
                (2, 3, 50.0),
                (3, 1, 60.0),
            ],
        )
        .to_csr()
    }

    fn paper_b() -> CsrMatrix {
        CooMatrix::from_triplets(
            4,
            4,
            [
                (0, 0, 1.0),
                (1, 1, 2.0),
                (1, 3, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
                (3, 1, 6.0),
                (3, 3, 7.0),
            ],
        )
        .to_csr()
    }

    #[test]
    fn paper_example_has_eleven_products() {
        let (exp, _) = setup(&dev(), &paper_a(), &paper_b());
        assert_eq!(exp.products, 11);
        // A's nonzeros reference B rows [0,1,2,3,3,1] with lengths
        // [1,2,2,2,2,2] → prefix [0,1,3,5,7,9,11].
        assert_eq!(exp.s, vec![0, 1, 3, 5, 7, 9, 11]);
        assert_eq!(exp.a_row_of_nnz, vec![0, 1, 1, 1, 2, 3]);
    }

    #[test]
    fn walk_emits_products_in_expansion_order() {
        let (exp, _) = setup(&dev(), &paper_a(), &paper_b());
        let mut cta = mps_simt::cta::Cta::new(0, 1, 128, 32);
        let mut seen = Vec::new();
        exp.walk_tile(&mut cta, 0, exp.products, |q, j, t| seen.push((q, j, t)));
        assert_eq!(seen.len(), 11);
        // First product: A nnz 0 (row 0) × B row 0 offset 0.
        assert_eq!(seen[0], (0, 0, 0));
        // Product indices are consecutive; j non-decreasing.
        for (i, &(q, j, _)) in seen.iter().enumerate() {
            assert_eq!(q, i);
            if i > 0 {
                assert!(j >= seen[i - 1].1);
            }
        }
    }

    #[test]
    fn walk_partial_tiles_compose() {
        let (exp, _) = setup(&dev(), &paper_a(), &paper_b());
        let mut cta = mps_simt::cta::Cta::new(0, 1, 128, 32);
        let mut all = Vec::new();
        exp.walk_tile(&mut cta, 0, exp.products, |q, j, t| all.push((q, j, t)));
        for split in [1, 4, 7, 10] {
            let mut parts = Vec::new();
            exp.walk_tile(&mut cta, 0, split, |q, j, t| parts.push((q, j, t)));
            exp.walk_tile(&mut cta, split, exp.products, |q, j, t| {
                parts.push((q, j, t))
            });
            assert_eq!(parts, all, "split at {split}");
        }
    }

    #[test]
    fn empty_b_rows_give_zero_products() {
        let a = CooMatrix::from_triplets(2, 2, [(0, 0, 1.0), (1, 1, 1.0)]).to_csr();
        let b = CsrMatrix::zeros(2, 2);
        let (exp, _) = setup(&dev(), &a, &b);
        assert_eq!(exp.products, 0);
    }
}
