//! Adaptive segmented/unsegmented SpGEMM — the paper's future work.
//!
//! The conclusion of the paper: *"we plan to address the deficiencies of
//! sort based SpGEMM methods by adaptively introducing segmented
//! approaches when necessary. Detecting specific cases like the Dense
//! matrix is relatively simple but would also require a more detailed
//! model to accurately predict the trade-off…"*.
//!
//! This module implements that plan:
//!
//! * [`segmented_spgemm`] — a row-wise (segmented) pipeline: each output
//!   row accumulates its products in an on-chip table and sorts only its
//!   own column set, never materializing the global intermediate matrix.
//!   On inputs like Dense — almost no duplicate (row,col) pairs per CTA —
//!   this removes the flat pipeline's pathological global sort.
//! * [`AdaptivePolicy`] — the detection model: a cheap sampled estimate of
//!   the duplicate compression ratio plus the mean products per row
//!   decides which pipeline wins.
//! * [`adaptive_spgemm`] — dispatches and reports the decision.

use mps_simt::block::radix_sort::block_radix_sort_keys;
use mps_simt::grid::{launch_map_named, LaunchConfig};
use mps_simt::Device;
use mps_sparse::CsrMatrix;

use super::bins::BinSummary;
use super::block_sort::bits_for;
use super::{merge_spgemm, PhaseTimes, SpgemmResult};
use crate::config::SpgemmConfig;

/// Which pipeline the adaptive dispatcher chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineChoice {
    /// The flat two-level merge-path pipeline (Section III-C).
    FlatMerge,
    /// The row-wise segmented pipeline.
    Segmented,
}

/// Decision thresholds for the adaptive dispatcher.
///
/// The flat pipeline's CTA-local reduction only finds duplicates that land
/// in the same `nv`-product tile. A tile covers `nv / avg|B_row|`
/// expansions, so once the average referenced B row approaches the tile
/// size there is nothing to reduce locally and the global sort carries the
/// full product volume — the Dense pathology. That ratio is what the
/// detector keys on, exactly the "relatively simple" detection the paper's
/// conclusion sketches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePolicy {
    /// Rows sampled for the estimate.
    pub sample_rows: usize,
    /// Segment once the mean expansion per A nonzero exceeds this fraction
    /// of the CTA tile (local dedup opportunity gone).
    pub expansion_tile_fraction: f64,
    /// Minimum mean products per output row for the segmented pipeline to
    /// amortize its per-row setup.
    pub min_products_per_row: f64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            sample_rows: 32,
            expansion_tile_fraction: 0.25,
            min_products_per_row: 256.0,
        }
    }
}

impl AdaptivePolicy {
    /// Sample rows of `a`, estimate the mean expansion per nonzero and the
    /// mean products per row, and return the pipeline choice for a tile of
    /// `nv` products.
    pub fn choose(&self, a: &CsrMatrix, b: &CsrMatrix, nv: usize) -> PipelineChoice {
        let rows = a.num_rows;
        if rows == 0 {
            return PipelineChoice::FlatMerge;
        }
        let step = (rows / self.sample_rows.max(1)).max(1);
        let mut sampled_products = 0usize;
        let mut sampled_nnz = 0usize;
        let mut sampled_rows = 0usize;
        for r in (0..rows).step_by(step).take(self.sample_rows) {
            for &k in a.row_cols(r) {
                sampled_products += b.row_len(k as usize);
            }
            sampled_nnz += a.row_len(r);
            sampled_rows += 1;
        }
        if sampled_rows == 0 || sampled_nnz == 0 {
            return PipelineChoice::FlatMerge;
        }
        let avg_expansion = sampled_products as f64 / sampled_nnz as f64;
        let per_row = sampled_products as f64 / sampled_rows as f64;
        if avg_expansion > self.expansion_tile_fraction * nv as f64
            && per_row > self.min_products_per_row
        {
            PipelineChoice::Segmented
        } else {
            PipelineChoice::FlatMerge
        }
    }
}

/// Row-wise segmented SpGEMM: one CTA per output row; the row's products
/// accumulate into an on-chip table (charged as shared-memory traffic up
/// to the table capacity, spilling to scattered global traffic beyond it)
/// and only the row's unique columns are sorted.
pub fn segmented_spgemm(
    device: &Device,
    a: &CsrMatrix,
    b: &CsrMatrix,
    cfg: &SpgemmConfig,
) -> SpgemmResult {
    assert_eq!(a.num_cols, b.num_rows, "inner dimensions must agree");
    let rows = a.num_rows;
    let col_bits = bits_for(b.num_cols);
    // On-chip accumulator capacity: one (col, value) slot per shared-memory
    // entry pair available to the CTA.
    let capacity = device.props.shared_mem_per_sm / device.props.max_ctas_per_sm / 12;

    let (tiles, stats) = launch_map_named(
        device,
        "spgemm_segmented",
        LaunchConfig::new(rows.max(1), cfg.block_threads),
        |cta| {
            let r = cta.cta_id;
            if r >= rows {
                return (Vec::new(), Vec::new(), 0u64);
            }
            let mut products = 0usize;
            for &k in a.row_cols(r) {
                products += b.row_len(k as usize);
            }
            cta.read_coalesced(a.row_len(r), 12);
            cta.gather(0..products, 12);
            cta.alu(2 * products as u64);

            // Accumulate (semantics: dense-marker per row; cost: table traffic).
            let mut acc: Vec<(u32, f64)> = Vec::new();
            let mut marker: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for (k, av) in a.row_cols(r).iter().zip(a.row_vals(r)) {
                for (c, bv) in b.row_cols(*k as usize).iter().zip(b.row_vals(*k as usize)) {
                    match marker.get(c) {
                        Some(&slot) => acc[slot].1 += av * bv,
                        None => {
                            marker.insert(*c, acc.len());
                            acc.push((*c, av * bv));
                        }
                    }
                }
            }
            if acc.len() <= capacity {
                cta.shmem(3 * products as u64);
            } else {
                // Accumulator spills: table traffic becomes scattered DRAM.
                cta.scatter((0..products).map(|p| (p * 2654435761) % (1 << 22)), 12);
            }

            // Sort the row's unique columns with a single block radix sort over
            // the meaningful column bits only.
            let mut keys: Vec<u32> = acc.iter().map(|&(c, _)| c).collect();
            block_radix_sort_keys(cta, &mut keys, 0, col_bits);
            acc.sort_unstable_by_key(|&(c, _)| c);

            cta.write_coalesced(acc.len(), 12);
            let (cols, vals): (Vec<u32>, Vec<f64>) = acc.into_iter().unzip();
            (cols, vals, products as u64)
        },
    );

    let mut row_offsets = vec![0usize; rows + 1];
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    let mut products = 0u64;
    // The grid is clamped to one CTA even for a 0-row A, so the launch can
    // hand back more tiles than output rows; only the first `rows` carry
    // row data (the rest are the empty placeholders CTAs beyond `rows`
    // return).
    for (r, (cols, vals, p)) in tiles.into_iter().enumerate().take(rows) {
        row_offsets[r + 1] = row_offsets[r] + cols.len();
        col_idx.extend(cols);
        values.extend(vals);
        products += p;
    }
    let phases = PhaseTimes {
        // The segmented pipeline is one fused kernel; report it under
        // Block Sort (the on-chip phase) for breakdown purposes.
        block_sort: stats.sim_ms,
        ..PhaseTimes::default()
    };
    SpgemmResult {
        c: CsrMatrix {
            num_rows: rows,
            num_cols: b.num_cols,
            row_offsets,
            col_idx,
            values,
        },
        products,
        phases,
        bins: BinSummary::default(),
        stats,
    }
}

/// Adaptive SpGEMM: chooses between the flat merge pipeline and the
/// segmented row-wise pipeline using [`AdaptivePolicy`].
pub fn adaptive_spgemm(
    device: &Device,
    a: &CsrMatrix,
    b: &CsrMatrix,
    cfg: &SpgemmConfig,
    policy: &AdaptivePolicy,
) -> (SpgemmResult, PipelineChoice) {
    match policy.choose(a, b, cfg.nv()) {
        PipelineChoice::Segmented => (
            segmented_spgemm(device, a, b, cfg),
            PipelineChoice::Segmented,
        ),
        PipelineChoice::FlatMerge => (merge_spgemm(device, a, b, cfg), PipelineChoice::FlatMerge),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::dense::to_dense;
    use mps_sparse::gen;
    use mps_sparse::ops::spgemm_ref;

    fn dev() -> Device {
        Device::titan()
    }

    fn cfg() -> SpgemmConfig {
        SpgemmConfig::default()
    }

    #[test]
    fn segmented_matches_reference() {
        for a in [
            gen::dense(40, 40),
            gen::random_uniform(120, 120, 6.0, 3.0, 1),
            gen::power_law(150, 150, 1, 1.5, 100, 2),
        ] {
            let got = segmented_spgemm(&dev(), &a, &a, &cfg());
            assert!(got.c.approx_eq(&spgemm_ref(&a, &a), 1e-12));
        }
    }

    #[test]
    fn segmented_rectangular() {
        let a = gen::random_uniform(30, 50, 5.0, 2.0, 3);
        let b = gen::random_uniform(50, 20, 4.0, 2.0, 4);
        let got = segmented_spgemm(&dev(), &a, &b, &cfg());
        assert_eq!(to_dense(&got.c), to_dense(&spgemm_ref(&a, &b)));
    }

    #[test]
    fn segmented_handles_zero_row_operands() {
        use mps_sparse::CsrMatrix;
        for (m, k, n) in [(0, 0, 0), (0, 5, 3), (4, 5, 0)] {
            let a = CsrMatrix::zeros(m, k);
            let b = CsrMatrix::zeros(k, n);
            let got = segmented_spgemm(&dev(), &a, &b, &cfg());
            got.c
                .validate()
                .unwrap_or_else(|e| panic!("{m}x{k}·{k}x{n}: {e}"));
            assert_eq!(to_dense(&got.c), to_dense(&spgemm_ref(&a, &b)));
        }
    }

    #[test]
    fn policy_picks_segmented_for_wide_dense() {
        // Dense 600×600: each expansion is a 600-entry B row — far beyond
        // a quarter of the 1408-product tile, so no local dedup is
        // possible and the detector must segment.
        let a = gen::dense(600, 600);
        let choice = AdaptivePolicy::default().choose(&a, &a, cfg().nv());
        assert_eq!(choice, PipelineChoice::Segmented);
    }

    #[test]
    fn policy_picks_flat_for_sparse_irregular() {
        let a = gen::power_law(2000, 2000, 1, 1.5, 800, 5);
        let choice = AdaptivePolicy::default().choose(&a, &a, cfg().nv());
        assert_eq!(choice, PipelineChoice::FlatMerge);
    }

    #[test]
    fn segmented_beats_flat_when_expansions_exceed_tiles() {
        // B rows of ~700 entries dwarf the 1408-product tile: the flat
        // pipeline's block sort reduces almost nothing and its global sort
        // carries nearly every product; the segmented pipeline keeps each
        // row on chip.
        let a = gen::dense(192, 192);
        let seg = segmented_spgemm(&dev(), &a, &a, &cfg());
        let flat = merge_spgemm(&dev(), &a, &a, &cfg());
        assert!(seg.c.approx_eq(&flat.c, 1e-12));
        assert!(
            seg.sim_ms() < flat.sim_ms(),
            "segmented {} should beat flat {}",
            seg.sim_ms(),
            flat.sim_ms()
        );
    }

    #[test]
    fn adaptive_result_is_correct_either_way() {
        let policy = AdaptivePolicy::default();
        for a in [
            gen::dense(64, 64),
            gen::random_uniform(200, 200, 5.0, 3.0, 6),
        ] {
            let (r, _) = adaptive_spgemm(&dev(), &a, &a, &cfg(), &policy);
            assert!(r.c.approx_eq(&spgemm_ref(&a, &a), 1e-12));
        }
    }

    #[test]
    fn empty_inputs_choose_flat_and_return_empty() {
        let z = CsrMatrix::zeros(4, 4);
        let (r, choice) = adaptive_spgemm(&dev(), &z, &z, &cfg(), &AdaptivePolicy::default());
        assert_eq!(choice, PipelineChoice::FlatMerge);
        assert_eq!(r.c.nnz(), 0);
    }
}
