//! Row binning for the bin-adaptive numeric pass.
//!
//! The symbolic phase knows every output row's intermediate-product count
//! before any value is formed, so the numeric pass can pick a per-row
//! strategy the way OpSparse and the Liu–Vinter SpGEMM framework do:
//! rows with few products keep a dense accumulator in shared memory and
//! scatter directly; mid-sized rows reduce through a shared-memory hash
//! table sized to the row's *output* nonzeros; only the heavy tail pays
//! the paper's global two-pass sort machinery. The thresholds live in
//! [`SpgemmConfig`] (`bin_tiny_max` / `bin_mid_max`).

use crate::config::SpgemmConfig;

/// Numeric execution strategy for one output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinClass {
    /// `products <= bin_tiny_max`: direct dense-accumulator scatter.
    Tiny,
    /// `bin_tiny_max < products <= bin_mid_max`: hash-based reduction.
    Mid,
    /// `products > bin_mid_max`: global two-pass sort (the paper's path).
    Heavy,
}

impl BinClass {
    /// Classify a row by its intermediate-product count.
    pub fn of(row_products: usize, cfg: &SpgemmConfig) -> BinClass {
        if row_products <= cfg.bin_tiny_max {
            BinClass::Tiny
        } else if row_products <= cfg.bin_mid_max {
            BinClass::Mid
        } else {
            BinClass::Heavy
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            BinClass::Tiny => "tiny",
            BinClass::Mid => "mid",
            BinClass::Heavy => "heavy",
        }
    }
}

/// Aggregate bin occupancy: rows and intermediate products per class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinSummary {
    pub tiny_rows: usize,
    pub mid_rows: usize,
    pub heavy_rows: usize,
    pub tiny_products: usize,
    pub mid_products: usize,
    pub heavy_products: usize,
}

impl BinSummary {
    pub fn rows(&self) -> usize {
        self.tiny_rows + self.mid_rows + self.heavy_rows
    }

    pub fn products(&self) -> usize {
        self.tiny_products + self.mid_products + self.heavy_products
    }

    /// Fraction of rows per class, `(label, fraction)`, zero when empty.
    pub fn row_fractions(&self) -> [(&'static str, f64); 3] {
        let n = self.rows().max(1) as f64;
        [
            ("tiny", self.tiny_rows as f64 / n),
            ("mid", self.mid_rows as f64 / n),
            ("heavy", self.heavy_rows as f64 / n),
        ]
    }

    /// Fraction of intermediate products per class.
    pub fn product_fractions(&self) -> [(&'static str, f64); 3] {
        let n = self.products().max(1) as f64;
        [
            ("tiny", self.tiny_products as f64 / n),
            ("mid", self.mid_products as f64 / n),
            ("heavy", self.heavy_products as f64 / n),
        ]
    }
}

/// Per-row bin assignment plus the aggregate summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowBins {
    /// Class of each output row (length = rows of A).
    pub class: Vec<BinClass>,
    pub summary: BinSummary,
}

impl RowBins {
    /// Classify every row from its intermediate-product count. Empty rows
    /// (zero products) land in the tiny bin and cost nothing.
    pub fn classify(row_products: &[usize], cfg: &SpgemmConfig) -> RowBins {
        let mut class = Vec::with_capacity(row_products.len());
        let mut summary = BinSummary::default();
        for &p in row_products {
            let c = BinClass::of(p, cfg);
            class.push(c);
            match c {
                BinClass::Tiny => {
                    summary.tiny_rows += 1;
                    summary.tiny_products += p;
                }
                BinClass::Mid => {
                    summary.mid_rows += 1;
                    summary.mid_products += p;
                }
                BinClass::Heavy => {
                    summary.heavy_rows += 1;
                    summary.heavy_products += p;
                }
            }
        }
        RowBins { class, summary }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SpgemmConfig {
        SpgemmConfig::default()
    }

    #[test]
    fn thresholds_are_inclusive_upper_bounds() {
        let c = cfg();
        assert_eq!(BinClass::of(0, &c), BinClass::Tiny);
        assert_eq!(BinClass::of(c.bin_tiny_max, &c), BinClass::Tiny);
        assert_eq!(BinClass::of(c.bin_tiny_max + 1, &c), BinClass::Mid);
        assert_eq!(BinClass::of(c.bin_mid_max, &c), BinClass::Mid);
        assert_eq!(BinClass::of(c.bin_mid_max + 1, &c), BinClass::Heavy);
    }

    #[test]
    fn classify_counts_rows_and_products() {
        let c = cfg();
        let rows = [0, 1, c.bin_tiny_max, c.bin_tiny_max + 1, c.bin_mid_max + 5];
        let bins = RowBins::classify(&rows, &c);
        assert_eq!(bins.summary.tiny_rows, 3);
        assert_eq!(bins.summary.mid_rows, 1);
        assert_eq!(bins.summary.heavy_rows, 1);
        assert_eq!(bins.summary.tiny_products, 1 + c.bin_tiny_max);
        assert_eq!(bins.summary.mid_products, c.bin_tiny_max + 1);
        assert_eq!(bins.summary.heavy_products, c.bin_mid_max + 5);
        assert_eq!(bins.summary.rows(), 5);
        assert_eq!(bins.summary.products(), rows.iter().sum::<usize>());
    }

    #[test]
    fn fractions_sum_to_one_and_survive_empty() {
        let bins = RowBins::classify(&[1, 40, 1000, 2, 2], &cfg());
        let rf: f64 = bins.summary.row_fractions().iter().map(|(_, f)| f).sum();
        let pf: f64 = bins
            .summary
            .product_fractions()
            .iter()
            .map(|(_, f)| f)
            .sum();
        assert!((rf - 1.0).abs() < 1e-12);
        assert!((pf - 1.0).abs() < 1e-12);
        let empty = RowBins::classify(&[], &cfg());
        for (_, f) in empty.summary.row_fractions() {
            assert_eq!(f, 0.0);
        }
    }
}
