//! Merge-path SpGEMM (Section III-C).
//!
//! C = A·B decomposed flatly over the intermediate *products* rather than
//! rows: every CTA expands and locally reduces exactly `nv` products,
//! irrespective of how the input rows distribute them. The pipeline
//! (Figure 3) splits into a **symbolic** half, a pure function of the two
//! sparsity patterns:
//!
//! 1. **Setup** — segmented prefix sum `S` of per-A-nonzero product counts;
//! 2. **Block Sort** — per-CTA expansion + single-pass column radix sort +
//!    local duplicate reduction (values never formed);
//! 3. **Global Sort** — permutation-only two-pass radix sort of the
//!    reduced (row,col) pairs, then CSR assembly of C's pattern;
//!
//! and a **numeric** half that forms and reduces the actual values. The
//! numeric half is bin-adaptive ([`bins`]): rows are classed by their
//! intermediate-product count, tiny rows scatter through a dense
//! shared-memory accumulator, mid rows reduce through a hash table sized
//! from the symbolic counts ([`hash`]), and only heavy rows pay the
//! paper's original two-pass Product Compute / Product Reduce machinery.
//! [`SpgemmPlan`] caches the symbolic half so repeated-pattern multiplies
//! re-run the numeric half alone.

pub mod adaptive;
pub mod bins;
pub mod block_sort;
pub mod hash;
pub mod plan;
pub mod product;
pub mod setup;

use mps_simt::grid::{launch_map_phased, LaunchConfig, LaunchStats};
use mps_simt::{Device, Phase};
use mps_sparse::CsrMatrix;

use crate::config::SpgemmConfig;
pub use bins::{BinClass, BinSummary, RowBins};
pub use hash::HashAccumulator;
pub use plan::SpgemmPlan;

/// Per-phase simulated times in milliseconds: the Figure 11 breakdown
/// extended with the two bin-adaptive numeric passes of the
/// symbolic/numeric split. The symbolic phases (setup, the two sorts,
/// assembly) are paid once per sparsity pattern; the numeric phases
/// (tiny scatter, mid hash, and the heavy bin's product compute/reduce)
/// are paid per value execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    pub setup: f64,
    pub block_sort: f64,
    pub global_sort: f64,
    /// Numeric pass over tiny-binned rows (dense-accumulator scatter).
    pub numeric_tiny: f64,
    /// Numeric pass over mid-binned rows (hash-based reduction).
    pub numeric_mid: f64,
    pub product_compute: f64,
    pub product_reduce: f64,
    pub other: f64,
}

impl PhaseTimes {
    pub fn total(&self) -> f64 {
        self.symbolic() + self.numeric()
    }

    /// Pattern-only time: paid once per (A,B) sparsity pattern.
    pub fn symbolic(&self) -> f64 {
        self.setup + self.block_sort + self.global_sort + self.other
    }

    /// Value time: paid on every numeric (re-)execution.
    pub fn numeric(&self) -> f64 {
        self.numeric_tiny + self.numeric_mid + self.product_compute + self.product_reduce
    }

    /// Field-wise sum of two phase breakdowns.
    pub fn plus(&self, other: &PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            setup: self.setup + other.setup,
            block_sort: self.block_sort + other.block_sort,
            global_sort: self.global_sort + other.global_sort,
            numeric_tiny: self.numeric_tiny + other.numeric_tiny,
            numeric_mid: self.numeric_mid + other.numeric_mid,
            product_compute: self.product_compute + other.product_compute,
            product_reduce: self.product_reduce + other.product_reduce,
            other: self.other + other.other,
        }
    }

    /// Phase fractions in Figure 11's legend order, with the bin-adaptive
    /// numeric passes slotted between the sorts and the heavy-bin pair.
    /// Labels match [`mps_simt::Phase::as_str`] so ledger and breakdown
    /// reconcile name-for-name.
    pub fn fractions(&self) -> [(&'static str, f64); 8] {
        let t = self.total().max(f64::MIN_POSITIVE);
        [
            ("Setup", self.setup / t),
            ("Block Sort", self.block_sort / t),
            ("Global Sort", self.global_sort / t),
            ("Tiny Scatter", self.numeric_tiny / t),
            ("Mid Hash", self.numeric_mid / t),
            ("Product Compute", self.product_compute / t),
            ("Product Reduce", self.product_reduce / t),
            ("Other", self.other / t),
        ]
    }
}

/// Result of a merge SpGEMM.
#[derive(Debug, Clone)]
pub struct SpgemmResult {
    pub c: CsrMatrix,
    /// Intermediate products expanded (the paper's work measure).
    pub products: u64,
    pub phases: PhaseTimes,
    /// Bin occupancy of the numeric pass (rows/products per class).
    /// Default (all zeros) for pipelines that do not bin.
    pub bins: BinSummary,
    /// Aggregated launch statistics over all phases.
    pub stats: LaunchStats,
}

impl SpgemmResult {
    /// Total simulated kernel time in milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.phases.total()
    }

    /// Achieved GFLOP/s under simulated time, counting the paper's
    /// 2·products flops (a multiply and an add per intermediate product).
    ///
    /// Empty inputs (zero products, zero phase-total time) report 0.0
    /// rather than NaN/inf.
    pub fn gflops(&self) -> f64 {
        let total_ms = self.phases.total();
        if total_ms <= 0.0 {
            return 0.0;
        }
        2.0 * self.products as f64 / (total_ms * 1e-3) / 1e9
    }
}

/// C = A·B with the two-level merge-path decomposition.
///
/// One-shot convenience over [`SpgemmPlan`]: builds the plan (charging the
/// full five-phase pipeline) and executes it once.
///
/// # Panics
/// Panics if `a.num_cols != b.num_rows`.
pub fn merge_spgemm(
    device: &Device,
    a: &CsrMatrix,
    b: &CsrMatrix,
    cfg: &SpgemmConfig,
) -> SpgemmResult {
    SpgemmPlan::new(device, a, b, cfg).execute(device, a, b)
}

/// Charge the CSR-assembly kernel (allocation + row-offset count pass) for
/// an output of `n` nonzeros. The host-side pattern build itself is the
/// parallel [`crate::assemble`] pass.
pub(crate) fn charge_assemble(device: &Device, n: usize) -> LaunchStats {
    let nv = 4096;
    let (_, stats) = launch_map_phased(
        device,
        "csr_assemble",
        Phase::Other,
        LaunchConfig::new(n.div_ceil(nv).max(1), 128),
        |cta| {
            let lo = cta.cta_id * nv;
            let hi = (lo + nv).min(n);
            cta.read_coalesced(hi - lo, 8);
            cta.alu((hi - lo) as u64);
            cta.write_coalesced(hi - lo, 4);
        },
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::dense::to_dense;
    use mps_sparse::ops::{spgemm_products, spgemm_ref};
    use mps_sparse::{gen, CooMatrix};
    use proptest::prelude::*;

    fn dev() -> Device {
        Device::titan()
    }

    fn paper_ab() -> (CsrMatrix, CsrMatrix) {
        let a = CooMatrix::from_triplets(
            4,
            4,
            [
                (0, 0, 10.0),
                (1, 1, 20.0),
                (1, 2, 30.0),
                (1, 3, 40.0),
                (2, 3, 50.0),
                (3, 1, 60.0),
            ],
        )
        .to_csr();
        let b = CooMatrix::from_triplets(
            4,
            4,
            [
                (0, 0, 1.0),
                (1, 1, 2.0),
                (1, 3, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
                (3, 1, 6.0),
                (3, 3, 7.0),
            ],
        )
        .to_csr();
        (a, b)
    }

    #[test]
    fn paper_worked_example() {
        let (a, b) = paper_ab();
        let r = merge_spgemm(&dev(), &a, &b, &SpgemmConfig::default());
        assert_eq!(r.products, 11);
        let expected = vec![
            vec![10.0, 0.0, 0.0, 0.0],
            vec![120.0, 430.0, 0.0, 340.0],
            vec![0.0, 300.0, 0.0, 350.0],
            vec![0.0, 120.0, 0.0, 180.0],
        ];
        assert_eq!(to_dense(&r.c), expected);
        r.c.validate().expect("well-formed product");
    }

    #[test]
    fn tiny_tiles_split_rows_across_ctas() {
        // Force many CTAs so that single output rows span several tiles
        // and cross-tile duplicates exercise the global reduce.
        let (a, b) = paper_ab();
        let cfg = SpgemmConfig {
            block_threads: 1,
            items_per_thread: 2,
            global_sort_nv: 3,
            ..SpgemmConfig::default()
        };
        let r = merge_spgemm(&dev(), &a, &b, &cfg);
        assert!(r.c.approx_eq(&spgemm_ref(&a, &b), 1e-12));
    }

    #[test]
    fn identity_product() {
        let a = gen::random_uniform(40, 40, 5.0, 2.0, 3);
        let i = CsrMatrix::identity(40);
        let r = merge_spgemm(&dev(), &a, &i, &SpgemmConfig::default());
        assert_eq!(r.c, a);
        let r = merge_spgemm(&dev(), &i, &a, &SpgemmConfig::default());
        assert_eq!(r.c, a);
    }

    #[test]
    fn empty_inputs_give_empty_output() {
        let a = CsrMatrix::zeros(5, 4);
        let b = CsrMatrix::zeros(4, 6);
        let r = merge_spgemm(&dev(), &a, &b, &SpgemmConfig::default());
        assert_eq!(r.c.nnz(), 0);
        assert_eq!((r.c.num_rows, r.c.num_cols), (5, 6));
        assert_eq!(r.products, 0);
    }

    #[test]
    fn empty_input_gflops_is_zero_not_nan() {
        // Regression: with zero products the phase-total time is 0.0 and a
        // naive rate divides 0/0.
        let a = CsrMatrix::zeros(5, 4);
        let b = CsrMatrix::zeros(4, 6);
        let r = merge_spgemm(&dev(), &a, &b, &SpgemmConfig::default());
        assert_eq!(r.products, 0);
        assert_eq!(r.gflops(), 0.0);
        assert!(r.gflops().is_finite());
        // The other degenerate corner: no charged time at all.
        let zeroed = SpgemmResult {
            c: CsrMatrix::zeros(1, 1),
            products: 0,
            phases: PhaseTimes::default(),
            bins: BinSummary::default(),
            stats: LaunchStats::default(),
        };
        assert_eq!(zeroed.gflops(), 0.0);
        assert!(zeroed.gflops().is_finite());
    }

    #[test]
    fn gflops_positive_for_nontrivial_product() {
        let a = gen::random_uniform(100, 100, 5.0, 2.0, 19);
        let r = merge_spgemm(&dev(), &a, &a, &SpgemmConfig::default());
        assert!(r.gflops() > 0.0);
    }

    #[test]
    fn rectangular_product() {
        let a = gen::random_uniform(30, 50, 6.0, 3.0, 5);
        let b = gen::random_uniform(50, 20, 4.0, 2.0, 6);
        let r = merge_spgemm(&dev(), &a, &b, &SpgemmConfig::default());
        assert!(r.c.approx_eq(&spgemm_ref(&a, &b), 1e-12));
        assert_eq!(r.products, spgemm_products(&a, &b));
    }

    #[test]
    fn a_times_a_transpose_lp_shape() {
        let a = gen::lp_like(20, 500, 30.0, 40.0, 7);
        let at = a.transpose();
        let r = merge_spgemm(&dev(), &a, &at, &SpgemmConfig::default());
        assert!(r.c.approx_eq(&spgemm_ref(&a, &at), 1e-12));
    }

    #[test]
    fn phase_times_cover_total() {
        let a = gen::random_uniform(200, 200, 8.0, 4.0, 8);
        let r = merge_spgemm(&dev(), &a, &a, &SpgemmConfig::default());
        let p = r.phases;
        assert!(p.total() > 0.0);
        let frac_sum: f64 = p.fractions().iter().map(|(_, f)| f).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
        assert!(p.block_sort > 0.0 && p.global_sort > 0.0);
        assert!(p.numeric() > 0.0, "numeric pass must be charged");
        assert!(
            (p.symbolic() + p.numeric() - p.total()).abs() < 1e-12,
            "split must partition the total"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn random_products_match_reference(
            m in 1usize..40,
            k in 1usize..40,
            n in 1usize..40,
            s1 in 0u64..100,
            s2 in 100u64..200,
            items in 1usize..4,
        ) {
            let a = gen::random_uniform(m, k, 3.0, 2.0, s1);
            let b = gen::random_uniform(k, n, 3.0, 2.0, s2);
            let cfg = SpgemmConfig {
                block_threads: 16,
                items_per_thread: items,
                global_sort_nv: 64,
                ..SpgemmConfig::default()
            };
            let r = merge_spgemm(&dev(), &a, &b, &cfg);
            prop_assert!(r.c.approx_eq(&spgemm_ref(&a, &b), 1e-12));
        }
    }
}
