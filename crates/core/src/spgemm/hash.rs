//! Open-addressing hash accumulator for the mid-bin numeric pass.
//!
//! Mid-binned rows reduce their products through a shared-memory hash
//! table instead of the global sort (the cuSPARSE/OpSparse strategy for
//! rows that fit in a CTA). The simulator uses this host-side table for
//! two things: the symbolic phase sizes it from the row's *output*
//! nonzeros (known exactly after the pattern is built — the progressive
//! sizing the symbolic/numeric split buys), and the measured probe count
//! feeds the mid-bin charge kernel, so the simulated cost reflects the
//! actual clustering behaviour of each matrix rather than a constant.

/// Power-of-two open-addressing table with linear probing and an
/// accumulate-on-collision insert, mirroring the shared-memory tables of
/// GPU hash SpGEMM kernels. Keys are column indices; `u64::MAX` is the
/// empty sentinel.
#[derive(Debug, Clone)]
pub struct HashAccumulator {
    keys: Vec<u64>,
    vals: Vec<f64>,
    mask: usize,
    len: usize,
    probes: u64,
}

const EMPTY: u64 = u64::MAX;

/// Fibonacci multiplicative hash — the usual GPU choice: one multiply,
/// one shift, good spread for clustered column indices.
#[inline]
fn spread(key: u64, mask: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask
}

impl HashAccumulator {
    /// Table sized for `n` distinct keys: the next power of two at or
    /// above `2n` (load factor <= 0.5), minimum 2 slots.
    pub fn with_capacity(n: usize) -> HashAccumulator {
        let slots = (2 * n.max(1)).next_power_of_two();
        HashAccumulator {
            keys: vec![EMPTY; slots],
            vals: vec![0.0; slots],
            mask: slots - 1,
            len: 0,
            probes: 0,
        }
    }

    /// Add `v` to the entry for `key`, inserting it if absent. Counts one
    /// probe per slot inspected (the shared-memory traffic of the kernel).
    ///
    /// # Panics
    /// Panics if the table is full and `key` is absent (the symbolic
    /// phase sizes tables so this cannot happen for planned rows).
    pub fn accumulate(&mut self, key: u64, v: f64) {
        debug_assert_ne!(key, EMPTY, "sentinel key");
        let mut i = spread(key, self.mask);
        for _ in 0..=self.mask {
            self.probes += 1;
            if self.keys[i] == key {
                self.vals[i] += v;
                return;
            }
            if self.keys[i] == EMPTY {
                self.keys[i] = key;
                self.vals[i] = v;
                self.len += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
        panic!("hash accumulator overflow: {} distinct keys", self.len);
    }

    /// Distinct keys inserted so far.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots inspected across all accumulates since construction
    /// (or the last [`HashAccumulator::clear`]).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Reset to empty, keeping the allocation, and zero the probe count.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.vals.fill(0.0);
        self.len = 0;
        self.probes = 0;
    }

    /// Drain the table's `(key, value)` pairs in ascending key order into
    /// `out` (appended), as the kernel's final sort-and-write would.
    pub fn drain_sorted(&mut self, out: &mut Vec<(u64, f64)>) {
        let start = out.len();
        for i in 0..self.keys.len() {
            if self.keys[i] != EMPTY {
                out.push((self.keys[i], self.vals[i]));
            }
        }
        out[start..].sort_unstable_by_key(|&(k, _)| k);
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_duplicates_and_drains_sorted() {
        let mut h = HashAccumulator::with_capacity(4);
        h.accumulate(7, 1.0);
        h.accumulate(3, 2.0);
        h.accumulate(7, 0.5);
        h.accumulate(11, 4.0);
        assert_eq!(h.len(), 3);
        let mut out = Vec::new();
        h.drain_sorted(&mut out);
        assert_eq!(out, vec![(3, 2.0), (7, 1.5), (11, 4.0)]);
        assert!(h.is_empty());
        assert_eq!(h.probes(), 0, "drain resets probe count");
    }

    #[test]
    fn probe_count_grows_with_collisions() {
        // Every insert inspects at least one slot, collisions more.
        let mut h = HashAccumulator::with_capacity(64);
        for k in 0..64u64 {
            h.accumulate(k, 1.0);
        }
        assert!(h.probes() >= 64);
        assert_eq!(h.len(), 64);
    }

    #[test]
    fn capacity_holds_exactly_n_distinct_keys() {
        // Load factor <= 0.5 must never overflow at the sized count.
        for n in 1..100usize {
            let mut h = HashAccumulator::with_capacity(n);
            for k in 0..n as u64 {
                h.accumulate(k * 1_000_003, 1.0);
            }
            assert_eq!(h.len(), n);
        }
    }

    #[test]
    fn clear_reuses_the_allocation() {
        let mut h = HashAccumulator::with_capacity(8);
        h.accumulate(5, 1.0);
        h.clear();
        assert!(h.is_empty());
        h.accumulate(5, 2.0);
        let mut out = Vec::new();
        h.drain_sorted(&mut out);
        assert_eq!(out, vec![(5, 2.0)]);
    }
}
