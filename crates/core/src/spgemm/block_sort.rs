//! SpGEMM phase 1: CTA-local expansion, single-pass radix sort, and local
//! duplicate reduction (the "Block Sort" bar of Figure 11; Figure 3 b–d).
//!
//! The key observation of Section III-C: because products expand in A's
//! storage order, each tile's entries are already ordered by output row, so
//! **one** stable radix sort on the column index makes all duplicates
//! adjacent — half the passes of two-phase ESC sorting (Figure 4). The sort
//! width is `⌈log2(num_cols)⌉` bits only, and when column bits plus
//! permutation bits fit in 32 the permutation rides in the unused upper
//! key bits, turning the pair sort into a cheaper keys-only sort.

use mps_simt::block::radix_sort::{block_radix_sort_keys, block_radix_sort_pairs};
use mps_simt::grid::{launch_map_phased, LaunchConfig, LaunchStats};
use mps_simt::{Device, Phase};
use mps_sparse::{pack_key, CsrMatrix};

use super::setup::Expansion;
use crate::config::SpgemmConfig;

/// Output of one CTA's block-sort phase.
#[derive(Debug, Clone)]
pub struct TileReduced {
    /// Locally unique (row,col) keys in the tile's (col, row) sort order.
    pub unique_keys: Vec<u64>,
    /// Sorted position → original product offset within the tile. Stored to
    /// global memory as 16-bit integers (the tile holds ≤ 1408 products).
    pub perm: Vec<u16>,
    /// `head[s]` marks sorted position `s` as the first of a duplicate run.
    pub head: Vec<bool>,
}

/// Bits needed to radix-sort values in `0..n`.
pub fn bits_for(n: usize) -> u32 {
    usize::BITS - n.saturating_sub(1).leading_zeros()
}

/// Run the block-sort phase over the whole product space.
pub fn block_sort(
    device: &Device,
    a: &CsrMatrix,
    b: &CsrMatrix,
    exp: &Expansion,
    cfg: &SpgemmConfig,
) -> (Vec<TileReduced>, LaunchStats) {
    let nv = cfg.nv();
    let total = exp.products;
    let num_ctas = total.div_ceil(nv).max(1);
    let col_bits = bits_for(b.num_cols);
    let perm_bits = bits_for(nv);
    let keys_only = col_bits + perm_bits <= 32;

    let launch = LaunchConfig::new(num_ctas, cfg.block_threads);
    let (tiles, stats) = launch_map_phased(
        device,
        "spgemm_block_sort",
        Phase::BlockSort,
        launch,
        |cta| {
            let lo = cta.cta_id * nv;
            let hi = (lo + nv).min(total);
            let count = hi - lo;

            // Expand the tile's (row, col) coordinates. Values are NOT formed
            // in this phase (the χ placeholders of Figure 3a).
            let mut rows: Vec<u32> = Vec::with_capacity(count);
            let mut cols: Vec<u32> = Vec::with_capacity(count);
            exp.walk_tile(cta, lo, hi, |_, j, t| {
                let brow = a.col_idx[j] as usize;
                let bpos = b.row_offsets[brow] + t;
                rows.push(exp.a_row_of_nnz[j]);
                cols.push(b.col_idx[bpos]);
            });
            // Traffic: A column indices (sequential), B row offsets and column
            // indices (gathered by referenced row, contiguous runs inside it).
            cta.read_coalesced(count, 4);
            cta.gather(lo..hi, 4);

            // Single-pass stable radix sort on the column index. The sorted
            // permutation either rides in the upper key bits (keys-only sort)
            // or travels as an explicit 16-bit value (pair sort).
            let mut perm: Vec<u16>;
            if keys_only {
                let mut keys: Vec<u32> = cols
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| c | ((i as u32) << col_bits))
                    .collect();
                block_radix_sort_keys(cta, &mut keys, 0, col_bits);
                perm = keys.iter().map(|&k| (k >> col_bits) as u16).collect();
            } else {
                let mut keys = cols.clone();
                let mut vals: Vec<u32> = (0..count as u32).collect();
                block_radix_sort_pairs(cta, &mut keys, &mut vals, 0, col_bits);
                perm = vals.iter().map(|&v| v as u16).collect();
            }
            // Defensive: ensure stability produced a valid permutation.
            debug_assert_eq!(perm.len(), count);

            // Scan sorted entries for duplicate heads and reduce locally. Two
            // entries are duplicates when both row and col match; rows within a
            // column group are non-decreasing, so duplicates are adjacent.
            cta.alu(3 * count as u64);
            let mut unique_keys = Vec::with_capacity(count);
            let mut head = Vec::with_capacity(count);
            let mut prev: Option<(u32, u32)> = None;
            for &p in perm.iter() {
                let orig = p as usize;
                let rc = (rows[orig], cols[orig]);
                let is_head = prev != Some(rc);
                head.push(is_head);
                if is_head {
                    unique_keys.push(pack_key(rc.0, rc.1));
                }
                prev = Some(rc);
            }

            // Store: 16-bit permutation + packed head bits + the reduced pairs.
            cta.write_coalesced(count, 2);
            cta.write_coalesced(count.div_ceil(8), 1);
            cta.write_coalesced(unique_keys.len(), 8);

            if count == 0 {
                perm = Vec::new();
            }
            TileReduced {
                unique_keys,
                perm,
                head,
            }
        },
    );
    (tiles, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spgemm::setup::setup;
    use mps_sparse::{unpack_key, CooMatrix};

    fn dev() -> Device {
        Device::titan()
    }

    fn paper_ab() -> (CsrMatrix, CsrMatrix) {
        let a = CooMatrix::from_triplets(
            4,
            4,
            [
                (0, 0, 10.0),
                (1, 1, 20.0),
                (1, 2, 30.0),
                (1, 3, 40.0),
                (2, 3, 50.0),
                (3, 1, 60.0),
            ],
        )
        .to_csr();
        let b = CooMatrix::from_triplets(
            4,
            4,
            [
                (0, 0, 1.0),
                (1, 1, 2.0),
                (1, 3, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
                (3, 1, 6.0),
                (3, 3, 7.0),
            ],
        )
        .to_csr();
        (a, b)
    }

    /// Figure 3 b–d: with two tiles of ~6 products, tile 0's six entries
    /// reduce to four unique pairs and tile 1's five stay five.
    #[test]
    fn figure_three_tiles_reduce_locally() {
        let (a, b) = paper_ab();
        let (exp, _) = setup(&dev(), &a, &b);
        let cfg = SpgemmConfig {
            block_threads: 2,
            items_per_thread: 3,
            global_sort_nv: 64,
            ..SpgemmConfig::default()
        };
        let (tiles, _) = block_sort(&dev(), &a, &b, &exp, &cfg);
        assert_eq!(tiles.len(), 2);
        // Tile 0 = products 0..6: (0,0),(1,3),(1,1),(1,1),(1,0),(1,3)
        // → unique {(0,0),(1,0),(1,1),(1,3)}.
        let t0: Vec<(u32, u32)> = tiles[0]
            .unique_keys
            .iter()
            .map(|&k| unpack_key(k))
            .collect();
        assert_eq!(t0.len(), 4);
        assert!(t0.contains(&(0, 0)) && t0.contains(&(1, 0)));
        assert!(t0.contains(&(1, 1)) && t0.contains(&(1, 3)));
        // Tile 1 = products 6..11: (1,1),(2,3),(2,1),(3,3),(3,1) — all unique.
        assert_eq!(tiles[1].unique_keys.len(), 5);
    }

    #[test]
    fn duplicates_are_adjacent_after_column_sort() {
        let (a, b) = paper_ab();
        let (exp, _) = setup(&dev(), &a, &b);
        let cfg = SpgemmConfig::default(); // everything in one tile
        let (tiles, _) = block_sort(&dev(), &a, &b, &exp, &cfg);
        assert_eq!(tiles.len(), 1);
        let t = &tiles[0];
        // 11 products → 9 unique pairs within one tile (Figure 3d+e merged):
        // (1,1) appears 3× and (1,3) 2×.
        assert_eq!(t.unique_keys.len(), 8);
        assert_eq!(t.head.iter().filter(|&&h| h).count(), 8);
        assert_eq!(t.perm.len(), 11);
    }

    #[test]
    fn permutation_is_valid() {
        let (a, b) = paper_ab();
        let (exp, _) = setup(&dev(), &a, &b);
        let (tiles, _) = block_sort(&dev(), &a, &b, &exp, &SpgemmConfig::default());
        for t in &tiles {
            let mut seen = vec![false; t.perm.len()];
            for &p in &t.perm {
                assert!(!seen[p as usize], "duplicate perm entry");
                seen[p as usize] = true;
            }
        }
    }

    #[test]
    fn bits_for_covers_powers_of_two() {
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(1024), 10);
        assert_eq!(bits_for(1025), 11);
    }

    #[test]
    fn empty_product_space_gives_empty_tiles() {
        let a = CsrMatrix::zeros(3, 3);
        let b = CsrMatrix::zeros(3, 3);
        let (exp, _) = setup(&dev(), &a, &b);
        let (tiles, _) = block_sort(&dev(), &a, &b, &exp, &SpgemmConfig::default());
        assert_eq!(tiles.len(), 1);
        assert!(tiles[0].unique_keys.is_empty());
    }
}
