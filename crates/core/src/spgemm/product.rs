//! SpGEMM numeric phases: product formation and reduction.
//!
//! No numerical values exist before this point — everything earlier is a
//! function of the two sparsity patterns. The one-shot kernels
//! ([`product_compute`] / [`product_reduce`]) are the paper's original
//! phases 3–4: each CTA re-runs its expansion to form the actual
//! products, permutes them with the stored block-sort permutation,
//! segment-reduces duplicates with the precomputed head flags, and
//! scatters the locally reduced values to their *globally sorted*
//! positions; a last reduce-by-key pass folds cross-tile duplicates.
//!
//! The bin-adaptive charge kernels below them price the numeric pass of a
//! cached symbolic plan: tiny rows through a dense-accumulator scatter,
//! mid rows through a hash reduction (probe counts measured host-side),
//! and only heavy rows through the original two-pass machinery.

use mps_simt::grid::{launch_map_phased, LaunchConfig, LaunchStats};
use mps_simt::{Device, Phase};
use mps_sparse::CsrMatrix;

use super::block_sort::TileReduced;
use super::setup::Expansion;
use crate::config::SpgemmConfig;

/// Phase 3: recompute, permute and locally reduce products, writing each
/// reduced value to its global sorted position.
///
/// `rank[i]` is the globally sorted position of reduced entry `i` (tile
/// entries concatenated in tile order). Returns values aligned with the
/// globally sorted key order.
pub fn product_compute(
    device: &Device,
    a: &CsrMatrix,
    b: &CsrMatrix,
    exp: &Expansion,
    tiles: &[TileReduced],
    rank: &[u32],
    cfg: &SpgemmConfig,
) -> (Vec<f64>, LaunchStats) {
    let nv = cfg.nv();
    let total = exp.products;
    let num_ctas = total.div_ceil(nv).max(1);
    debug_assert_eq!(num_ctas, tiles.len());

    // Global offset of each tile's reduced entries.
    let mut tile_offsets = Vec::with_capacity(tiles.len() + 1);
    tile_offsets.push(0usize);
    for t in tiles {
        tile_offsets.push(tile_offsets.last().expect("non-empty") + t.unique_keys.len());
    }
    let reduced_total = *tile_offsets.last().expect("non-empty");
    debug_assert_eq!(reduced_total, rank.len());

    let launch = LaunchConfig::new(num_ctas, cfg.block_threads);
    let tile_offsets_ref = &tile_offsets;
    let (scattered, stats) = launch_map_phased(
        device,
        "spgemm_product_compute",
        Phase::ProductCompute,
        launch,
        |cta| {
            let lo = cta.cta_id * nv;
            let hi = (lo + nv).min(total);
            let count = hi - lo;
            let tile = &tiles[cta.cta_id];

            // Second expansion: this time the values are fetched and formed.
            let mut vals: Vec<f64> = Vec::with_capacity(count);
            exp.walk_tile(cta, lo, hi, |_, j, t| {
                let brow = a.col_idx[j] as usize;
                let bpos = b.row_offsets[brow] + t;
                vals.push(a.values[j] * b.values[bpos]);
            });
            cta.read_coalesced(count, 4); // A col idx
            cta.gather(lo..hi, 8); // B values (per-row contiguous)
            cta.alu(count as u64); // multiplies

            // Load the stored permutation and head flags, permute in shared
            // memory, and segment-reduce duplicate runs.
            cta.read_coalesced(count, 2);
            cta.read_coalesced(count.div_ceil(8), 1);
            cta.shmem(2 * count as u64);
            cta.sync();
            cta.alu(2 * count as u64);

            let base = tile_offsets_ref[cta.cta_id];
            let mut out: Vec<(u32, f64)> = Vec::with_capacity(tile.unique_keys.len());
            let mut local = 0usize;
            for s in 0..count {
                let v = vals[tile.perm[s] as usize];
                if tile.head[s] {
                    out.push((rank[base + local], v));
                    local += 1;
                } else {
                    out.last_mut().expect("head precedes body").1 += v;
                }
            }
            // Scatter reduced values to their globally sorted positions.
            cta.scatter(out.iter().map(|&(r, _)| r as usize), 8);
            out
        },
    );

    let mut ordered = vec![0.0f64; reduced_total];
    for tile in scattered {
        for (r, v) in tile {
            ordered[r as usize] = v;
        }
    }
    (ordered, stats)
}

/// Phase 4: reduce-by-key over globally sorted keys/values, producing the
/// final unique coordinate list of C.
pub fn product_reduce(
    device: &Device,
    sorted_keys: &[u64],
    ordered_vals: &[f64],
    cfg: &SpgemmConfig,
) -> (Vec<u64>, Vec<f64>, LaunchStats) {
    debug_assert_eq!(sorted_keys.len(), ordered_vals.len());
    let n = sorted_keys.len();
    let nv = cfg.global_sort_nv;
    let num_ctas = n.div_ceil(nv).max(1);

    let launch = LaunchConfig::new(num_ctas, cfg.block_threads);
    let (parts, stats) = launch_map_phased(
        device,
        "spgemm_product_reduce",
        Phase::ProductReduce,
        launch,
        |cta| {
            let lo = cta.cta_id * nv;
            let hi = (lo + nv).min(n);
            cta.read_coalesced(hi - lo, 16);
            cta.alu(3 * (hi - lo) as u64);
            // Segmented reduce within the tile; the trailing run is the carry.
            let mut keys = Vec::new();
            let mut vals: Vec<f64> = Vec::new();
            for i in lo..hi {
                if keys.last() == Some(&sorted_keys[i]) {
                    *vals.last_mut().expect("parallel vectors") += ordered_vals[i];
                } else {
                    keys.push(sorted_keys[i]);
                    vals.push(ordered_vals[i]);
                }
            }
            cta.write_coalesced(keys.len(), 16);
            (keys, vals)
        },
    );

    // Stitch tiles: a run spanning a tile boundary merges with the
    // previous tile's trailing entry (the carry of the SpMV update phase,
    // applied to keys).
    let mut keys: Vec<u64> = Vec::with_capacity(n);
    let mut vals: Vec<f64> = Vec::with_capacity(n);
    for (tk, tv) in parts {
        let mut start = 0;
        if let (Some(&last), Some(&first)) = (keys.last(), tk.first()) {
            if last == first {
                *vals.last_mut().expect("parallel vectors") += tv[0];
                start = 1;
            }
        }
        keys.extend_from_slice(&tk[start..]);
        vals.extend_from_slice(&tv[start..]);
    }
    (keys, vals, stats)
}

/// Proportional share of `total` items owned by the slice `lo..hi` of `n`.
#[inline]
fn share(total: usize, lo: usize, hi: usize, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    hi * total / n - lo * total / n
}

/// Numeric pass over tiny-binned rows: stream the slot map, gather both
/// source values, one FMA per product into a dense shared-memory
/// accumulator, coalesced write of the bin's output values.
///
/// `a_idx` / `b_pos` are the gather targets of the bin's products
/// (concatenated row-major); `out_nnz` is the bin's output nonzeros.
pub(crate) fn numeric_tiny(
    device: &Device,
    a_idx: &[u32],
    b_pos: &[u32],
    out_nnz: usize,
    cfg: &SpgemmConfig,
) -> LaunchStats {
    debug_assert_eq!(a_idx.len(), b_pos.len());
    let n = b_pos.len();
    let nv = cfg.nv();
    let launch = LaunchConfig::new(n.div_ceil(nv).max(1), cfg.block_threads);
    let (_, stats) = launch_map_phased(
        device,
        "spgemm_numeric_tiny",
        Phase::NumericTiny,
        launch,
        |cta| {
            let lo = cta.cta_id * nv;
            let hi = (lo + nv).min(n);
            let count = hi - lo;
            cta.read_coalesced(count, 8); // slot map + source indices
            cta.gather(a_idx[lo..hi].iter().map(|&i| i as usize), 8);
            cta.gather(b_pos[lo..hi].iter().map(|&p| p as usize), 8);
            cta.alu(2 * count as u64); // one FMA per product
            cta.shmem(2 * count as u64); // accumulator read-modify-write
            cta.sync();
            cta.write_coalesced(share(out_nnz, lo, hi, n), 8);
        },
    );
    stats
}

/// Numeric pass over mid-binned rows: like the tiny pass but reducing
/// through a shared-memory hash table sized from the symbolic counts.
/// `probes` is the measured total slot inspections over the bin (from
/// [`super::hash::HashAccumulator`]), so clustering costs what it costs.
pub(crate) fn numeric_mid(
    device: &Device,
    a_idx: &[u32],
    b_pos: &[u32],
    out_nnz: usize,
    probes: u64,
    cfg: &SpgemmConfig,
) -> LaunchStats {
    debug_assert_eq!(a_idx.len(), b_pos.len());
    let n = b_pos.len();
    let nv = cfg.nv();
    let launch = LaunchConfig::new(n.div_ceil(nv).max(1), cfg.block_threads);
    let (_, stats) = launch_map_phased(
        device,
        "spgemm_numeric_mid",
        Phase::NumericMid,
        launch,
        |cta| {
            let lo = cta.cta_id * nv;
            let hi = (lo + nv).min(n);
            let count = hi - lo;
            let probe_share = share(probes as usize, lo, hi, n) as u64;
            cta.read_coalesced(count, 8); // slot map + source indices
            cta.gather(a_idx[lo..hi].iter().map(|&i| i as usize), 8);
            cta.gather(b_pos[lo..hi].iter().map(|&p| p as usize), 8);
            cta.alu(count as u64 + probe_share); // multiply + key hashing
            cta.shmem(2 * probe_share); // probe + insert traffic
            cta.sync();
            cta.write_coalesced(share(out_nnz, lo, hi, n), 8);
        },
    );
    stats
}

/// Numeric pass over heavy-binned rows, first half: the paper's product
/// compute restricted to the heavy products. `ranks` are the globally
/// sorted positions of the bin's locally reduced entries (the scatter
/// targets).
pub(crate) fn numeric_heavy_compute(
    device: &Device,
    a_idx: &[u32],
    b_pos: &[u32],
    ranks: &[u32],
    cfg: &SpgemmConfig,
) -> LaunchStats {
    debug_assert_eq!(a_idx.len(), b_pos.len());
    let n = b_pos.len();
    let nv = cfg.nv();
    let launch = LaunchConfig::new(n.div_ceil(nv).max(1), cfg.block_threads);
    let (_, stats) = launch_map_phased(
        device,
        "spgemm_product_compute",
        Phase::ProductCompute,
        launch,
        |cta| {
            let lo = cta.cta_id * nv;
            let hi = (lo + nv).min(n);
            let count = hi - lo;
            cta.read_coalesced(count, 4); // A col idx
            cta.gather(a_idx[lo..hi].iter().map(|&i| i as usize), 8);
            cta.gather(b_pos[lo..hi].iter().map(|&p| p as usize), 8);
            cta.alu(count as u64); // multiplies
                                   // Stored permutation + head flags, permute in shared memory,
                                   // segment-reduce duplicate runs.
            cta.read_coalesced(count, 2);
            cta.read_coalesced(count.div_ceil(8), 1);
            cta.shmem(2 * count as u64);
            cta.sync();
            cta.alu(2 * count as u64);
            // Scatter reduced values to their globally sorted positions.
            let r_lo = (lo * ranks.len()).checked_div(n).unwrap_or(0);
            let r_hi = (hi * ranks.len()).checked_div(n).unwrap_or(0);
            cta.scatter(ranks[r_lo..r_hi].iter().map(|&r| r as usize), 8);
        },
    );
    stats
}

/// Numeric pass over heavy-binned rows, second half: reduce-by-key over
/// the bin's `n_reduced` globally sorted entries into `out_nnz` outputs.
pub(crate) fn numeric_heavy_reduce(
    device: &Device,
    n_reduced: usize,
    out_nnz: usize,
    cfg: &SpgemmConfig,
) -> LaunchStats {
    let nv = cfg.global_sort_nv;
    let launch = LaunchConfig::new(n_reduced.div_ceil(nv).max(1), cfg.block_threads);
    let (_, stats) = launch_map_phased(
        device,
        "spgemm_product_reduce",
        Phase::ProductReduce,
        launch,
        |cta| {
            let lo = cta.cta_id * nv;
            let hi = (lo + nv).min(n_reduced);
            cta.read_coalesced(hi - lo, 16);
            cta.alu(3 * (hi - lo) as u64);
            cta.write_coalesced(share(out_nnz, lo, hi, n_reduced), 16);
        },
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::titan()
    }

    fn cfg() -> SpgemmConfig {
        SpgemmConfig {
            global_sort_nv: 4,
            ..SpgemmConfig::default()
        }
    }

    #[test]
    fn share_partitions_exactly() {
        // Per-CTA output shares must tile the total with no gap/overlap.
        let (total, n, nv) = (13usize, 100usize, 8usize);
        let mut sum = 0;
        let mut lo = 0;
        while lo < n {
            let hi = (lo + nv).min(n);
            sum += share(total, lo, hi, n);
            lo = hi;
        }
        assert_eq!(sum, total);
        assert_eq!(share(5, 0, 0, 0), 0);
    }

    #[test]
    fn bin_charges_scale_with_products() {
        let d = dev();
        let small: Vec<u32> = (0..64u32).collect();
        let big: Vec<u32> = (0..4096u32).collect();
        let c = SpgemmConfig::default();
        let t_small = numeric_tiny(&d, &small, &small, 32, &c).sim_ms;
        let t_big = numeric_tiny(&d, &big, &big, 2048, &c).sim_ms;
        assert!(t_big > t_small);
        let m_small = numeric_mid(&d, &small, &small, 32, 128, &c).sim_ms;
        let m_big = numeric_mid(&d, &big, &big, 2048, 8192, &c).sim_ms;
        assert!(m_big > m_small);
        let h_small = numeric_heavy_reduce(&d, 64, 32, &c).sim_ms;
        let h_big = numeric_heavy_reduce(&d, 4096, 2048, &c).sim_ms;
        assert!(h_big > h_small);
    }

    #[test]
    fn reduce_by_key_folds_runs_within_tiles() {
        let keys = vec![1u64, 1, 2, 3, 3, 3];
        let vals = vec![1.0, 2.0, 4.0, 1.0, 1.0, 1.0];
        let (k, v, _) = product_reduce(&dev(), &keys, &vals, &cfg());
        assert_eq!(k, vec![1, 2, 3]);
        assert_eq!(v, vec![3.0, 4.0, 3.0]);
    }

    #[test]
    fn reduce_by_key_folds_runs_across_tile_boundaries() {
        // nv = 4 puts the run of 7s across the boundary.
        let keys = vec![5u64, 7, 7, 7, 7, 9];
        let vals = vec![1.0, 1.0, 1.0, 1.0, 1.0, 2.0];
        let (k, v, _) = product_reduce(&dev(), &keys, &vals, &cfg());
        assert_eq!(k, vec![5, 7, 9]);
        assert_eq!(v, vec![1.0, 4.0, 2.0]);
    }

    #[test]
    fn reduce_of_empty_input() {
        let (k, v, _) = product_reduce(&dev(), &[], &[], &cfg());
        assert!(k.is_empty() && v.is_empty());
    }

    #[test]
    fn reduce_single_giant_run() {
        let keys = vec![42u64; 23];
        let vals = vec![0.5f64; 23];
        let (k, v, _) = product_reduce(&dev(), &keys, &vals, &cfg());
        assert_eq!(k, vec![42]);
        assert!((v[0] - 11.5).abs() < 1e-12);
    }
}
