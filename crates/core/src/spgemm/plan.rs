//! Symbolic/numeric split for merge-path SpGEMM.
//!
//! Every phase of the Figure 3 pipeline except the arithmetic itself is a
//! function of the two sparsity patterns: the product-space prefix sum, the
//! block-sort permutations and duplicate heads, the global sort order, and
//! the output pattern never look at a value. [`SpgemmPlan`] runs that
//! **symbolic** half once — setup, block sort, global sort, CSR assembly —
//! and composes everything it learned into three flat maps:
//!
//! * `a_idx` / `b_pos` — for every intermediate product, the input value
//!   indices that form it (the second expansion, precomputed);
//! * `slot` — the output nonzero each product accumulates into (block-sort
//!   permutation ∘ global rank ∘ run-of-key, fused at build);
//!
//! plus the per-row product counts and the bin assignment they imply
//! ([`super::bins`]). A **numeric** execution is then a single flat
//! fused-multiply-add loop — `values[slot[q]] += a[a_idx[q]] · b[b_pos[q]]`
//! — with zero structural work, zero scratch, and zero heap allocation
//! once warm. Buffers are sized from the symbolic counts (the exact
//! output nonzeros), not worst-case product bounds.
//!
//! The numeric pass is charged bin-adaptively at build: tiny rows through
//! the dense-accumulator scatter kernel, mid rows through the hash
//! reduction (probe counts measured with [`super::hash::HashAccumulator`]
//! tables sized from the symbolic counts), heavy rows through the paper's
//! original two-pass product compute / product reduce. The one-shot
//! [`super::merge_spgemm`] is plan build + one execution, so planned
//! replays are bitwise identical to it by construction.

use rayon::prelude::*;

use mps_merge::radix::sort_permutation;
use mps_simt::grid::{launch_map_phased, LaunchConfig, LaunchStats};
use mps_simt::{Device, Phase, PhaseLedger};
use mps_sparse::{unpack_key, CsrMatrix};

use super::bins::{BinClass, BinSummary, RowBins};
use super::block_sort::{self, bits_for};
use super::hash::HashAccumulator;
use super::product;
use super::setup;
use super::{PhaseTimes, SpgemmResult};
use crate::assemble;
use crate::config::SpgemmConfig;
use crate::error::PlanError;
use crate::workspace::Workspace;

/// Cached symbolic state for a fixed pair of sparsity patterns: the fused
/// numeric maps, the output CSR pattern, per-row bins, and the simulated
/// cost of both halves of the pipeline.
#[derive(Debug, Clone)]
pub struct SpgemmPlan {
    a_dims: (usize, usize, usize),
    b_dims: (usize, usize, usize),
    /// Intermediate products (the paper's work measure).
    products: usize,
    /// Per-product index into `a.values` (expansion order).
    a_idx: Vec<u32>,
    /// Per-product index into `b.values` (expansion order).
    b_pos: Vec<u32>,
    /// Per-product output nonzero index (the fused structure map).
    slot: Vec<u32>,
    /// Per-row intermediate-product counts (symbolic).
    row_products: Vec<usize>,
    /// Per-row numeric bin assignment.
    bins: RowBins,
    /// Output pattern.
    row_offsets: Vec<usize>,
    col_idx: Vec<u32>,
    /// Pattern-only cost, paid once per pattern pair at plan build.
    symbolic: PhaseTimes,
    /// Value cost, modelling one numeric execution (bin-adaptive).
    numeric: PhaseTimes,
    symbolic_ledger: PhaseLedger,
    numeric_ledger: PhaseLedger,
    symbolic_stats: LaunchStats,
    numeric_stats: LaunchStats,
}

impl SpgemmPlan {
    /// Build the plan for `a · b`, charging the symbolic pipeline plus one
    /// bin-adaptive numeric pass against `device`.
    ///
    /// # Panics
    /// Panics if `a.num_cols != b.num_rows`.
    pub fn new(device: &Device, a: &CsrMatrix, b: &CsrMatrix, cfg: &SpgemmConfig) -> SpgemmPlan {
        Self::try_new(device, a, b, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`SpgemmPlan::new`]: returns [`PlanError`] when the
    /// inner dimensions disagree or the configuration is invalid.
    pub fn try_new(
        device: &Device,
        a: &CsrMatrix,
        b: &CsrMatrix,
        cfg: &SpgemmConfig,
    ) -> Result<SpgemmPlan, PlanError> {
        if a.num_cols != b.num_rows {
            return Err(PlanError::InnerDimMismatch {
                a_cols: a.num_cols,
                b_rows: b.num_rows,
            });
        }
        if cfg.block_threads == 0 {
            return Err(PlanError::InvalidConfig("block_threads must be nonzero"));
        }
        if cfg.global_sort_nv == 0 {
            return Err(PlanError::InvalidConfig("global_sort_nv must be nonzero"));
        }
        if cfg.bin_tiny_max > cfg.bin_mid_max {
            return Err(PlanError::InvalidConfig(
                "bin_tiny_max must not exceed bin_mid_max",
            ));
        }
        Ok(Self::build(device, a, b, cfg))
    }

    fn build(device: &Device, a: &CsrMatrix, b: &CsrMatrix, cfg: &SpgemmConfig) -> SpgemmPlan {
        let mut symbolic_stats = LaunchStats::default();
        let mut symbolic = PhaseTimes::default();
        let mut symbolic_ledger = PhaseLedger::new();
        let a_dims = (a.num_rows, a.num_cols, a.nnz());
        let b_dims = (b.num_rows, b.num_cols, b.nnz());

        // ---- Symbolic 1: setup ----------------------------------------
        let (exp, setup_stats) = setup::setup(device, a, b);
        symbolic.setup = setup_stats.sim_ms;
        symbolic_ledger.charge(
            Phase::Setup,
            setup_stats.sim_ms,
            setup_stats.totals.dram_bytes(),
        );
        symbolic_stats.add(&setup_stats);

        // Per-row product counts: the prefix sum already holds them.
        let row_products: Vec<usize> = (0..a.num_rows)
            .map(|r| exp.s[a.row_offsets[r + 1]] - exp.s[a.row_offsets[r]])
            .collect();
        let bins = RowBins::classify(&row_products, cfg);

        if exp.products == 0 {
            return SpgemmPlan {
                a_dims,
                b_dims,
                products: 0,
                a_idx: Vec::new(),
                b_pos: Vec::new(),
                slot: Vec::new(),
                row_products,
                bins,
                row_offsets: vec![0; a.num_rows + 1],
                col_idx: Vec::new(),
                symbolic,
                numeric: PhaseTimes::default(),
                symbolic_ledger,
                numeric_ledger: PhaseLedger::new(),
                symbolic_stats,
                numeric_stats: LaunchStats::default(),
            };
        }

        // ---- Symbolic 2: block sort -----------------------------------
        let (tiles, bs_stats) = block_sort::block_sort(device, a, b, &exp, cfg);
        symbolic.block_sort = bs_stats.sim_ms;
        symbolic_ledger.charge(
            Phase::BlockSort,
            bs_stats.sim_ms,
            bs_stats.totals.dram_bytes(),
        );
        symbolic_stats.add(&bs_stats);

        let reduced_keys: Vec<u64> = tiles
            .iter()
            .flat_map(|t| t.unique_keys.iter().copied())
            .collect();

        // ---- Symbolic 3: global sort (permutation only) ---------------
        let col_bits = bits_for(b.num_cols);
        let key_bits = col_bits + bits_for(a.num_rows);
        let sort_keys: Vec<u64> = reduced_keys
            .iter()
            .map(|&k| {
                let (r, c) = unpack_key(k);
                ((r as u64) << col_bits) | c as u64
            })
            .collect();
        let (gperm, gs_stats) = device.phase_scope(Phase::GlobalSort, || {
            sort_permutation(device, &sort_keys, key_bits.max(1), cfg.global_sort_nv)
        });
        symbolic.global_sort = gs_stats.sim_ms;
        symbolic_ledger.charge(
            Phase::GlobalSort,
            gs_stats.sim_ms,
            gs_stats.totals.dram_bytes(),
        );
        symbolic_stats.add(&gs_stats);

        let n_reduced = reduced_keys.len();
        let mut rank = vec![0u32; n_reduced];
        for (pos, &src) in gperm.iter().enumerate() {
            rank[src as usize] = pos as u32;
        }
        let gperm_ref = &gperm;
        let (_, inv_stats) = launch_map_phased(
            device,
            "spgemm_rank_invert",
            Phase::GlobalSort,
            LaunchConfig::new(
                n_reduced.div_ceil(cfg.global_sort_nv).max(1),
                cfg.block_threads,
            ),
            |cta| {
                let lo = cta.cta_id * cfg.global_sort_nv;
                let hi = (lo + cfg.global_sort_nv).min(n_reduced);
                cta.read_coalesced(hi - lo, 4);
                cta.scatter(gperm_ref[lo..hi].iter().map(|&p| p as usize), 4);
            },
        );
        symbolic.global_sort += inv_stats.sim_ms;
        symbolic_ledger.charge(
            Phase::GlobalSort,
            inv_stats.sim_ms,
            inv_stats.totals.dram_bytes(),
        );
        symbolic_stats.add(&inv_stats);

        let sorted_keys: Vec<u64> = gperm.iter().map(|&p| reduced_keys[p as usize]).collect();

        // Sorted position → output index (runs of equal sorted keys), and
        // the unique key list the pattern assembles from.
        let mut run_of = Vec::with_capacity(sorted_keys.len());
        let mut final_keys = Vec::new();
        let mut run = 0u32;
        for (i, &k) in sorted_keys.iter().enumerate() {
            if i == 0 {
                final_keys.push(k);
            } else if k != sorted_keys[i - 1] {
                run += 1;
                final_keys.push(k);
            }
            run_of.push(run);
        }

        // ---- Symbolic 4: CSR assembly charge + host pattern build -----
        let other_stats = super::charge_assemble(device, final_keys.len());
        symbolic.other = other_stats.sim_ms;
        symbolic_ledger.charge(
            Phase::Other,
            other_stats.sim_ms,
            other_stats.totals.dram_bytes(),
        );
        symbolic_stats.add(&other_stats);
        let row_offsets = assemble::row_offsets_from_sorted_keys(a.num_rows, &final_keys);
        let col_idx = assemble::cols_from_keys(&final_keys);

        // ---- Fuse the structure maps for the numeric replay -----------
        let (a_idx, b_pos) = product_sources(a, b, &exp.s, cfg.nv());
        let nv = cfg.nv();
        let total = exp.products;
        let mut slot = vec![0u32; total];
        let mut base = 0usize;
        for (t, tile) in tiles.iter().enumerate() {
            let lo = t * nv;
            let hi = (lo + nv).min(total);
            let mut local = 0usize;
            let mut cur = 0u32;
            for s in 0..(hi - lo) {
                let q = lo + tile.perm[s] as usize;
                if tile.head[s] {
                    cur = run_of[rank[base + local] as usize];
                    local += 1;
                }
                slot[q] = cur;
            }
            base += tile.unique_keys.len();
        }

        // ---- Numeric: one bin-adaptive pass, charged from the plan ----
        let (numeric, numeric_ledger, numeric_stats) = charge_numeric(
            device,
            a,
            b,
            cfg,
            &bins,
            &row_products,
            &row_offsets,
            &a_idx,
            &b_pos,
            &reduced_keys,
            &rank,
            &exp.s,
        );

        SpgemmPlan {
            a_dims,
            b_dims,
            products: total,
            a_idx,
            b_pos,
            slot,
            row_products,
            bins,
            row_offsets,
            col_idx,
            symbolic,
            numeric,
            symbolic_ledger,
            numeric_ledger,
            symbolic_stats,
            numeric_stats,
        }
    }

    /// Intermediate products expanded by the planned multiply.
    pub fn products(&self) -> u64 {
        self.products as u64
    }

    /// Number of nonzeros in the output pattern.
    pub fn output_nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Combined per-phase simulated times: symbolic build plus one numeric
    /// execution (what the one-shot pipeline reports).
    pub fn phases(&self) -> PhaseTimes {
        self.symbolic.plus(&self.numeric)
    }

    /// Pattern-only phase times, paid once per pattern pair.
    pub fn symbolic_phases(&self) -> PhaseTimes {
        self.symbolic
    }

    /// Value phase times, paid per numeric execution.
    pub fn numeric_phases(&self) -> PhaseTimes {
        self.numeric
    }

    /// Simulated milliseconds of the symbolic (pattern) half.
    pub fn symbolic_ms(&self) -> f64 {
        self.symbolic.total()
    }

    /// Simulated milliseconds of one numeric execution.
    pub fn numeric_ms(&self) -> f64 {
        self.numeric.total()
    }

    /// Launch/time/DRAM ledger of the symbolic half.
    pub fn symbolic_ledger(&self) -> &PhaseLedger {
        &self.symbolic_ledger
    }

    /// Launch/time/DRAM ledger of one numeric execution.
    pub fn numeric_ledger(&self) -> &PhaseLedger {
        &self.numeric_ledger
    }

    /// Combined ledger (symbolic + one numeric execution).
    pub fn ledger(&self) -> PhaseLedger {
        let mut l = self.symbolic_ledger.clone();
        l.merge(&self.numeric_ledger);
        l
    }

    /// Aggregate launch statistics of the symbolic half.
    pub fn symbolic_launch_stats(&self) -> &LaunchStats {
        &self.symbolic_stats
    }

    /// Aggregate launch statistics of one numeric execution.
    pub fn numeric_launch_stats(&self) -> &LaunchStats {
        &self.numeric_stats
    }

    /// Per-row intermediate-product counts discovered by the symbolic
    /// phase.
    pub fn row_products(&self) -> &[usize] {
        &self.row_products
    }

    /// Per-row numeric bin assignment.
    pub fn bins(&self) -> &RowBins {
        &self.bins
    }

    /// Aggregate bin occupancy.
    pub fn bin_summary(&self) -> BinSummary {
        self.bins.summary
    }

    /// Exact bytes a numeric execution touches in plan + output buffers:
    /// three u32 maps over the product space plus the f64 output values.
    /// Sized from the symbolic counts — no worst-case bound anywhere.
    pub fn numeric_bytes(&self) -> usize {
        4 * (self.a_idx.len() + self.b_pos.len() + self.slot.len()) + 8 * self.output_nnz()
    }

    /// Swap the numeric values of the planned **A** operand in place. The
    /// symbolic half (product maps, slot fusion, output pattern, bins) is
    /// a function of the two sparsity patterns alone, so a value swap
    /// keeps the plan fully valid and the next
    /// [`SpgemmPlan::execute_numeric`] is a pure numeric replay with the
    /// new values.
    ///
    /// Errors (leaving `a` untouched) if `a` does not carry the planned
    /// A-pattern or `values` is not one value per planned nonzero.
    pub fn update_values(&self, a: &mut CsrMatrix, values: Vec<f64>) -> Result<(), PlanError> {
        Self::swap_values(self.a_dims, a, values)
    }

    /// Swap the numeric values of the planned **B** operand in place (see
    /// [`SpgemmPlan::update_values`]).
    pub fn update_values_b(&self, b: &mut CsrMatrix, values: Vec<f64>) -> Result<(), PlanError> {
        Self::swap_values(self.b_dims, b, values)
    }

    fn swap_values(
        dims: (usize, usize, usize),
        m: &mut CsrMatrix,
        values: Vec<f64>,
    ) -> Result<(), PlanError> {
        let got = (m.num_rows, m.num_cols, m.nnz());
        if dims != got {
            return Err(PlanError::PatternMismatch {
                expected: dims,
                got,
            });
        }
        if values.len() != dims.2 {
            return Err(PlanError::ValueLengthMismatch {
                expected: dims.2,
                got: values.len(),
            });
        }
        m.values = values;
        Ok(())
    }

    fn check_inputs(&self, a: &CsrMatrix, b: &CsrMatrix) {
        assert_eq!(
            (a.num_rows, a.num_cols, a.nnz()),
            self.a_dims,
            "matrix A does not match the plan"
        );
        assert_eq!(
            (b.num_rows, b.num_cols, b.nnz()),
            self.b_dims,
            "matrix B does not match the plan"
        );
    }

    /// Numeric re-execution: write the output values for `a · b` into a
    /// caller-owned buffer (the pattern lives in the plan) with zero
    /// structural work — one flat fused-multiply-add loop over the product
    /// space. Performs no heap allocation once `values` has warmed to the
    /// output size.
    ///
    /// Returns the simulated milliseconds of one numeric pass (cached from
    /// the bin-adaptive charge at plan build).
    ///
    /// # Panics
    /// Panics if either matrix does not match the planned patterns.
    pub fn execute_numeric(&self, a: &CsrMatrix, b: &CsrMatrix, values: &mut Vec<f64>) -> f64 {
        self.check_inputs(a, b);
        values.clear();
        values.resize(self.output_nnz(), 0.0);
        let av = &a.values[..];
        let bv = &b.values[..];
        for ((&s, &ai), &bp) in self.slot.iter().zip(&self.a_idx).zip(&self.b_pos) {
            values[s as usize] += av[ai as usize] * bv[bp as usize];
        }
        self.numeric.total()
    }

    /// Steady-state execution in the shared plan API shape: numeric
    /// re-execution via [`SpgemmPlan::execute_numeric`] (the workspace is
    /// accepted for signature parity with the other kernels' plans; the
    /// fused numeric loop needs no scratch).
    ///
    /// Returns the simulated milliseconds of the full planned pipeline
    /// (symbolic + one numeric pass).
    pub fn execute_into(
        &self,
        a: &CsrMatrix,
        b: &CsrMatrix,
        values: &mut Vec<f64>,
        _ws: &mut Workspace,
    ) -> f64 {
        self.execute_numeric(a, b, values);
        self.phases().total()
    }

    /// Numeric re-execution assembling a full output matrix: clones the
    /// cached pattern and fills freshly computed values. This is the
    /// serving path for cached plans — no launch-stat bookkeeping, just
    /// the flat numeric replay plus two pattern clones.
    ///
    /// # Panics
    /// Panics if either matrix does not match the planned patterns.
    pub fn execute_matrix(&self, a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
        let mut values = Vec::new();
        self.execute_numeric(a, b, &mut values);
        CsrMatrix {
            num_rows: self.a_dims.0,
            num_cols: self.b_dims.1,
            row_offsets: self.row_offsets.clone(),
            col_idx: self.col_idx.clone(),
            values,
        }
    }

    /// Run the planned multiply, assembling a full [`SpgemmResult`] (clones
    /// the cached pattern and stats). `device` is unused beyond API
    /// symmetry — the cost was charged at plan build.
    pub fn execute(&self, _device: &Device, a: &CsrMatrix, b: &CsrMatrix) -> SpgemmResult {
        let c = self.execute_matrix(a, b);
        let mut stats = self.symbolic_stats.clone();
        stats.add(&self.numeric_stats);
        SpgemmResult {
            c,
            products: self.products as u64,
            phases: self.phases(),
            bins: self.bins.summary,
            stats,
        }
    }
}

/// Charge one bin-adaptive numeric pass: gather each bin's products, size
/// the mid-bin hash tables from the symbolic output counts and measure
/// their probes, and price the heavy bin through the paper's two-pass
/// kernels. Empty bins launch nothing.
#[allow(clippy::too_many_arguments)]
fn charge_numeric(
    device: &Device,
    a: &CsrMatrix,
    b: &CsrMatrix,
    cfg: &SpgemmConfig,
    bins: &RowBins,
    row_products: &[usize],
    row_offsets: &[usize],
    a_idx: &[u32],
    b_pos: &[u32],
    reduced_keys: &[u64],
    rank: &[u32],
    s: &[usize],
) -> (PhaseTimes, PhaseLedger, LaunchStats) {
    let mut numeric = PhaseTimes::default();
    let mut ledger = PhaseLedger::new();
    let mut stats = LaunchStats::default();
    let sum = &bins.summary;

    // Per-bin product gather streams and output counts, row-major.
    let mut tiny_a = Vec::with_capacity(sum.tiny_products);
    let mut tiny_b = Vec::with_capacity(sum.tiny_products);
    let mut mid_a = Vec::with_capacity(sum.mid_products);
    let mut mid_b = Vec::with_capacity(sum.mid_products);
    let mut heavy_a = Vec::with_capacity(sum.heavy_products);
    let mut heavy_b = Vec::with_capacity(sum.heavy_products);
    let (mut tiny_out, mut mid_out, mut heavy_out) = (0usize, 0usize, 0usize);
    let mut mid_probes = 0u64;
    for (r, &class) in bins.class.iter().enumerate() {
        if row_products[r] == 0 {
            continue;
        }
        let q_lo = s[a.row_offsets[r]];
        let q_hi = s[a.row_offsets[r + 1]];
        let out = row_offsets[r + 1] - row_offsets[r];
        match class {
            BinClass::Tiny => {
                tiny_a.extend_from_slice(&a_idx[q_lo..q_hi]);
                tiny_b.extend_from_slice(&b_pos[q_lo..q_hi]);
                tiny_out += out;
            }
            BinClass::Mid => {
                mid_a.extend_from_slice(&a_idx[q_lo..q_hi]);
                mid_b.extend_from_slice(&b_pos[q_lo..q_hi]);
                mid_out += out;
                // Table sized from the symbolic count; measure the probes
                // this row's actual column stream costs.
                let mut table = HashAccumulator::with_capacity(out);
                for &bp in &b_pos[q_lo..q_hi] {
                    table.accumulate(b.col_idx[bp as usize] as u64, 1.0);
                }
                mid_probes += table.probes();
            }
            BinClass::Heavy => {
                heavy_a.extend_from_slice(&a_idx[q_lo..q_hi]);
                heavy_b.extend_from_slice(&b_pos[q_lo..q_hi]);
                heavy_out += out;
            }
        }
    }

    if !tiny_b.is_empty() {
        let st = product::numeric_tiny(device, &tiny_a, &tiny_b, tiny_out, cfg);
        numeric.numeric_tiny = st.sim_ms;
        ledger.charge(Phase::NumericTiny, st.sim_ms, st.totals.dram_bytes());
        stats.add(&st);
    }
    if !mid_b.is_empty() {
        let st = product::numeric_mid(device, &mid_a, &mid_b, mid_out, mid_probes, cfg);
        numeric.numeric_mid = st.sim_ms;
        ledger.charge(Phase::NumericMid, st.sim_ms, st.totals.dram_bytes());
        stats.add(&st);
    }
    if !heavy_b.is_empty() {
        // Globally sorted positions of the heavy rows' reduced entries —
        // the scatter targets of the two-pass path.
        let heavy_ranks: Vec<u32> = reduced_keys
            .iter()
            .zip(rank)
            .filter(|(&k, _)| bins.class[unpack_key(k).0 as usize] == BinClass::Heavy)
            .map(|(_, &r)| r)
            .collect();
        let st = product::numeric_heavy_compute(device, &heavy_a, &heavy_b, &heavy_ranks, cfg);
        numeric.product_compute = st.sim_ms;
        ledger.charge(Phase::ProductCompute, st.sim_ms, st.totals.dram_bytes());
        stats.add(&st);
        let st = product::numeric_heavy_reduce(device, heavy_ranks.len(), heavy_out, cfg);
        numeric.product_reduce = st.sim_ms;
        ledger.charge(Phase::ProductReduce, st.sim_ms, st.totals.dram_bytes());
        stats.add(&st);
    }
    (numeric, ledger, stats)
}

/// Per-product source indices `(a value index, b value index)` in expansion
/// order, computed with the same per-tile chunking the kernels use: each
/// chunk seeks its first A nonzero with one binary search into the product
/// prefix sum, then walks.
fn product_sources(a: &CsrMatrix, b: &CsrMatrix, s: &[usize], nv: usize) -> (Vec<u32>, Vec<u32>) {
    let total = *s.last().expect("non-empty prefix sum");
    if total == 0 {
        return (Vec::new(), Vec::new());
    }
    let chunks = total.div_ceil(nv);
    let parts: Vec<(Vec<u32>, Vec<u32>)> = (0..chunks)
        .into_par_iter()
        .map(|chunk| {
            let lo = chunk * nv;
            let hi = (lo + nv).min(total);
            let mut j = s.partition_point(|&v| v <= lo) - 1;
            let mut a_idx = Vec::with_capacity(hi - lo);
            let mut b_pos = Vec::with_capacity(hi - lo);
            for q in lo..hi {
                while s[j + 1] <= q {
                    j += 1;
                }
                let t = q - s[j];
                a_idx.push(j as u32);
                b_pos.push((b.row_offsets[a.col_idx[j] as usize] + t) as u32);
            }
            (a_idx, b_pos)
        })
        .collect();
    let mut a_idx = Vec::with_capacity(total);
    let mut b_pos = Vec::with_capacity(total);
    for (ai, bp) in parts {
        a_idx.extend(ai);
        b_pos.extend(bp);
    }
    (a_idx, b_pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spgemm::merge_spgemm;
    use mps_sparse::gen;
    use mps_sparse::ops::spgemm_ref;

    fn dev() -> Device {
        Device::titan()
    }

    #[test]
    fn plan_execute_matches_one_shot_bitwise() {
        let a = gen::random_uniform(120, 90, 5.0, 3.0, 41);
        let b = gen::random_uniform(90, 110, 4.0, 2.0, 42);
        let cfg = SpgemmConfig::default();
        let one_shot = merge_spgemm(&dev(), &a, &b, &cfg);
        let plan = SpgemmPlan::new(&dev(), &a, &b, &cfg);
        let planned = plan.execute(&dev(), &a, &b);
        assert_eq!(
            planned.c, one_shot.c,
            "planned result must be byte-identical"
        );
        assert_eq!(planned.products, one_shot.products);
        assert_eq!(planned.phases, one_shot.phases);
        assert_eq!(planned.bins, one_shot.bins);
    }

    #[test]
    fn update_values_matches_fresh_plan_bitwise_and_validates() {
        let a0 = gen::random_uniform(90, 70, 5.0, 2.0, 61);
        let b0 = gen::random_uniform(70, 80, 4.0, 2.0, 62);
        let cfg = SpgemmConfig::default();
        let plan = SpgemmPlan::new(&dev(), &a0, &b0, &cfg);
        let (mut a, mut b) = (a0.clone(), b0.clone());
        let va: Vec<f64> = a0.values.iter().map(|v| v * 2.0 - 0.5).collect();
        let vb: Vec<f64> = b0.values.iter().map(|v| v * -1.0 + 0.25).collect();
        plan.update_values(&mut a, va).expect("same A pattern");
        plan.update_values_b(&mut b, vb).expect("same B pattern");
        let swapped = plan.execute_matrix(&a, &b);
        let fresh = SpgemmPlan::new(&dev(), &a, &b, &cfg).execute_matrix(&a, &b);
        assert_eq!(
            swapped, fresh,
            "value swap must replay bitwise identically to a fresh plan"
        );
        assert!(matches!(
            plan.update_values(&mut a, vec![0.0]),
            Err(PlanError::ValueLengthMismatch {
                expected: _,
                got: 1
            })
        ));
        let mut wrong = gen::stencil_5pt(6, 6);
        let n = wrong.nnz();
        assert!(matches!(
            plan.update_values_b(&mut wrong, vec![0.0; n]),
            Err(PlanError::PatternMismatch { .. })
        ));
    }

    #[test]
    fn plan_reuse_with_new_values() {
        let a = gen::random_uniform(80, 80, 5.0, 3.0, 51);
        let b = gen::random_uniform(80, 80, 5.0, 3.0, 52);
        let cfg = SpgemmConfig {
            block_threads: 16,
            items_per_thread: 3,
            global_sort_nv: 64,
            ..SpgemmConfig::default()
        };
        let plan = SpgemmPlan::new(&dev(), &a, &b, &cfg);
        let mut a2 = a.clone();
        for (i, v) in a2.values.iter_mut().enumerate() {
            *v = (i % 7) as f64 - 2.5;
        }
        let planned = plan.execute(&dev(), &a2, &b);
        assert!(planned.c.approx_eq(&spgemm_ref(&a2, &b), 1e-12));
    }

    #[test]
    fn numeric_reexecution_is_bitwise_identical_to_fresh_one_shot() {
        // Same pattern, mutated values: the cached plan's numeric pass
        // must reproduce a freshly built one-shot result exactly.
        let a = gen::random_uniform(100, 100, 6.0, 3.0, 53);
        let b = gen::random_uniform(100, 100, 5.0, 2.0, 54);
        let cfg = SpgemmConfig::default();
        let plan = SpgemmPlan::new(&dev(), &a, &b, &cfg);
        let mut b2 = b.clone();
        for (i, v) in b2.values.iter_mut().enumerate() {
            *v = 0.25 + (i % 11) as f64;
        }
        let mut values = Vec::new();
        plan.execute_numeric(&a, &b2, &mut values);
        let fresh = merge_spgemm(&dev(), &a, &b2, &cfg);
        assert_eq!(values, fresh.c.values);
    }

    #[test]
    fn tiny_tiles_cross_tile_runs_replay_exactly() {
        // Runs spanning reduce-tile boundaries exercise the fused slot map.
        let a = gen::random_uniform(30, 30, 4.0, 2.0, 61);
        let b = gen::random_uniform(30, 30, 4.0, 2.0, 62);
        let cfg = SpgemmConfig {
            block_threads: 1,
            items_per_thread: 2,
            global_sort_nv: 3,
            ..SpgemmConfig::default()
        };
        let one_shot = merge_spgemm(&dev(), &a, &b, &cfg);
        let plan = SpgemmPlan::new(&dev(), &a, &b, &cfg);
        let planned = plan.execute(&dev(), &a, &b);
        assert_eq!(planned.c, one_shot.c);
        assert!(planned.c.approx_eq(&spgemm_ref(&a, &b), 1e-12));
    }

    #[test]
    fn symbolic_and_numeric_partition_the_total() {
        let a = gen::random_uniform(150, 150, 7.0, 4.0, 63);
        let plan = SpgemmPlan::new(&dev(), &a, &a, &SpgemmConfig::default());
        assert!(plan.symbolic_ms() > 0.0);
        assert!(plan.numeric_ms() > 0.0);
        let total = plan.phases().total();
        assert!((plan.symbolic_ms() + plan.numeric_ms() - total).abs() < 1e-12);
        // Ledgers reconcile with the phase breakdown to 1e-9.
        assert!((plan.symbolic_ledger().total_ms() - plan.symbolic_ms()).abs() < 1e-9);
        assert!((plan.numeric_ledger().total_ms() - plan.numeric_ms()).abs() < 1e-9);
        assert!((plan.ledger().total_ms() - total).abs() < 1e-9);
    }

    #[test]
    fn bins_cover_every_row_and_product() {
        let a = gen::power_law(200, 200, 2, 1.8, 60, 14);
        let plan = SpgemmPlan::new(&dev(), &a, &a, &SpgemmConfig::default());
        let sum = plan.bin_summary();
        assert_eq!(sum.rows(), 200);
        assert_eq!(sum.products(), plan.products() as usize);
        assert_eq!(plan.row_products().len(), 200);
        assert_eq!(
            plan.row_products().iter().sum::<usize>(),
            plan.products() as usize
        );
    }

    #[test]
    fn forced_bin_thresholds_route_rows_and_still_match() {
        // Squeeze the thresholds so all three numeric paths run at once.
        let a = gen::random_uniform(120, 120, 6.0, 4.0, 67);
        let cfg = SpgemmConfig {
            bin_tiny_max: 8,
            bin_mid_max: 40,
            ..SpgemmConfig::default()
        };
        let r = merge_spgemm(&dev(), &a, &a, &cfg);
        assert!(r.bins.tiny_rows > 0 || r.bins.mid_rows > 0 || r.bins.heavy_rows > 0);
        assert!(r.c.approx_eq(&spgemm_ref(&a, &a), 1e-12));
        // The phase breakdown carries whichever bins are occupied.
        if r.bins.mid_products > 0 {
            assert!(r.phases.numeric_mid > 0.0);
        }
        if r.bins.heavy_products > 0 {
            assert!(r.phases.product_compute > 0.0 && r.phases.product_reduce > 0.0);
        }
    }

    #[test]
    fn empty_product_space_plan() {
        let a = CsrMatrix::zeros(5, 4);
        let b = CsrMatrix::zeros(4, 6);
        let plan = SpgemmPlan::new(&dev(), &a, &b, &SpgemmConfig::default());
        assert_eq!(plan.products(), 0);
        assert_eq!(plan.numeric_ms(), 0.0);
        let r = plan.execute(&dev(), &a, &b);
        assert_eq!(r.c.nnz(), 0);
        assert_eq!((r.c.num_rows, r.c.num_cols), (5, 6));
    }

    #[test]
    fn execute_into_reuses_buffers() {
        let a = gen::random_uniform(60, 60, 5.0, 2.0, 71);
        let b = gen::random_uniform(60, 60, 5.0, 2.0, 72);
        let plan = SpgemmPlan::new(&dev(), &a, &b, &SpgemmConfig::default());
        let mut ws = Workspace::new();
        let mut values = Vec::new();
        plan.execute_into(&a, &b, &mut values, &mut ws);
        let expected = values.clone();
        let cap = values.capacity();
        let ptr = values.as_ptr();
        plan.execute_into(&a, &b, &mut values, &mut ws);
        assert_eq!(values, expected);
        assert_eq!(values.capacity(), cap);
        assert_eq!(values.as_ptr(), ptr, "warm buffer must be reused in place");
    }

    #[test]
    fn numeric_bytes_scale_with_symbolic_counts() {
        let a = gen::random_uniform(60, 60, 5.0, 2.0, 73);
        let plan = SpgemmPlan::new(&dev(), &a, &a, &SpgemmConfig::default());
        let expect = 12 * plan.products() as usize + 8 * plan.output_nnz();
        assert_eq!(plan.numeric_bytes(), expect);
    }

    #[test]
    #[should_panic(expected = "does not match the plan")]
    fn plan_rejects_mismatched_operand() {
        let a = gen::random_uniform(20, 20, 4.0, 2.0, 81);
        let b = gen::random_uniform(20, 20, 4.0, 2.0, 82);
        let other = gen::random_uniform(20, 20, 4.0, 2.0, 83);
        let plan = SpgemmPlan::new(&dev(), &a, &b, &SpgemmConfig::default());
        plan.execute(&dev(), &other, &b);
    }
}
