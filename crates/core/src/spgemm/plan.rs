//! Plan/execute split for merge-path SpGEMM.
//!
//! Every phase of the Figure 3 pipeline except the arithmetic itself is a
//! function of the two sparsity patterns: the product-space prefix sum, the
//! block-sort permutations and duplicate heads, the global sort order, and
//! the output pattern never look at a value. [`SpgemmPlan`] runs the whole
//! simulated pipeline once — charging exactly what `merge_spgemm` charges —
//! and keeps the structure maps it discovers:
//!
//! * `a_idx` / `b_pos` — for every intermediate product, the input value
//!   indices that form it (the second expansion, precomputed);
//! * `perm` / `head` / `tile_offsets` — the per-tile block-sort
//!   permutation and duplicate-run heads (Figure 3 c–d);
//! * `rank` — globally sorted position of each locally reduced entry;
//! * `run_of` — output nonzero owning each sorted position;
//! * the CSR pattern of C.
//!
//! A planned execution is then three flat loops (form + locally reduce +
//! scatter, then reduce-by-key, then value placement) that replay the exact
//! floating-point accumulation order of the one-shot pipeline — including
//! the per-tile grouping and cross-tile carry stitch of the product-reduce
//! phase, so results are bitwise identical.

use rayon::prelude::*;

use mps_merge::radix::sort_permutation;
use mps_simt::grid::{launch_map_phased, LaunchConfig, LaunchStats};
use mps_simt::{Device, Phase, PhaseLedger};
use mps_sparse::{unpack_key, CsrMatrix};

use super::block_sort::{self, bits_for};
use super::product;
use super::setup;
use super::{PhaseTimes, SpgemmResult};
use crate::assemble;
use crate::config::SpgemmConfig;
use crate::error::PlanError;
use crate::workspace::Workspace;

/// Precomputed SpGEMM state for a fixed pair of sparsity patterns: all
/// structure maps plus the cached simulated cost of every phase.
#[derive(Debug, Clone)]
pub struct SpgemmPlan {
    a_dims: (usize, usize, usize),
    b_dims: (usize, usize, usize),
    /// Intermediate products (the paper's work measure).
    products: usize,
    /// Block-sort tile width used at build.
    nv: usize,
    /// Per-product index into `a.values` (expansion order).
    a_idx: Vec<u32>,
    /// Per-product index into `b.values` (expansion order).
    b_pos: Vec<u32>,
    /// Flattened per-tile sorted-position → tile-local product offset.
    perm: Vec<u16>,
    /// Flattened per-tile duplicate-run head flags.
    head: Vec<bool>,
    /// Reduced-entry base of each block-sort tile.
    tile_offsets: Vec<usize>,
    /// Locally reduced entry → globally sorted position.
    rank: Vec<u32>,
    /// Globally sorted position → output nonzero index.
    run_of: Vec<u32>,
    /// Reduce-by-key tile width used at build.
    global_sort_nv: usize,
    /// Output pattern.
    row_offsets: Vec<usize>,
    col_idx: Vec<u32>,
    /// Cached per-phase simulated times, paid at plan build.
    phases: PhaseTimes,
    /// Per-phase launch/time/DRAM ledger (same totals as `phases`, plus
    /// traffic), in [`Phase`] terms for trace aggregation.
    ledger: PhaseLedger,
    /// Cached aggregate launch statistics.
    stats: LaunchStats,
}

impl SpgemmPlan {
    /// Build the plan for `a · b`, charging the full five-phase pipeline
    /// cost against `device` once.
    ///
    /// # Panics
    /// Panics if `a.num_cols != b.num_rows`.
    pub fn new(device: &Device, a: &CsrMatrix, b: &CsrMatrix, cfg: &SpgemmConfig) -> SpgemmPlan {
        Self::try_new(device, a, b, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`SpgemmPlan::new`]: returns [`PlanError`] when the
    /// inner dimensions disagree or the configuration is invalid.
    pub fn try_new(
        device: &Device,
        a: &CsrMatrix,
        b: &CsrMatrix,
        cfg: &SpgemmConfig,
    ) -> Result<SpgemmPlan, PlanError> {
        if a.num_cols != b.num_rows {
            return Err(PlanError::InnerDimMismatch {
                a_cols: a.num_cols,
                b_rows: b.num_rows,
            });
        }
        if cfg.block_threads == 0 {
            return Err(PlanError::InvalidConfig("block_threads must be nonzero"));
        }
        if cfg.global_sort_nv == 0 {
            return Err(PlanError::InvalidConfig("global_sort_nv must be nonzero"));
        }
        Ok(Self::build(device, a, b, cfg))
    }

    fn build(device: &Device, a: &CsrMatrix, b: &CsrMatrix, cfg: &SpgemmConfig) -> SpgemmPlan {
        let mut stats = LaunchStats::default();
        let mut phases = PhaseTimes::default();
        let mut ledger = PhaseLedger::new();
        let a_dims = (a.num_rows, a.num_cols, a.nnz());
        let b_dims = (b.num_rows, b.num_cols, b.nnz());

        // ---- Phase 1: setup -------------------------------------------
        let (exp, setup_stats) = setup::setup(device, a, b);
        phases.setup = setup_stats.sim_ms;
        ledger.charge(
            Phase::Setup,
            setup_stats.sim_ms,
            setup_stats.totals.dram_bytes(),
        );
        stats.add(&setup_stats);

        if exp.products == 0 {
            return SpgemmPlan {
                a_dims,
                b_dims,
                products: 0,
                nv: cfg.nv(),
                a_idx: Vec::new(),
                b_pos: Vec::new(),
                perm: Vec::new(),
                head: Vec::new(),
                tile_offsets: vec![0],
                rank: Vec::new(),
                run_of: Vec::new(),
                global_sort_nv: cfg.global_sort_nv,
                row_offsets: vec![0; a.num_rows + 1],
                col_idx: Vec::new(),
                phases,
                ledger,
                stats,
            };
        }

        // ---- Phase 2: block sort --------------------------------------
        let (tiles, bs_stats) = block_sort::block_sort(device, a, b, &exp, cfg);
        phases.block_sort = bs_stats.sim_ms;
        ledger.charge(
            Phase::BlockSort,
            bs_stats.sim_ms,
            bs_stats.totals.dram_bytes(),
        );
        stats.add(&bs_stats);

        let reduced_keys: Vec<u64> = tiles
            .iter()
            .flat_map(|t| t.unique_keys.iter().copied())
            .collect();

        // ---- Phase 3: global sort (permutation only) ------------------
        let col_bits = bits_for(b.num_cols);
        let key_bits = col_bits + bits_for(a.num_rows);
        let sort_keys: Vec<u64> = reduced_keys
            .iter()
            .map(|&k| {
                let (r, c) = unpack_key(k);
                ((r as u64) << col_bits) | c as u64
            })
            .collect();
        let (gperm, gs_stats) = device.phase_scope(Phase::GlobalSort, || {
            sort_permutation(device, &sort_keys, key_bits.max(1), cfg.global_sort_nv)
        });
        phases.global_sort = gs_stats.sim_ms;
        ledger.charge(
            Phase::GlobalSort,
            gs_stats.sim_ms,
            gs_stats.totals.dram_bytes(),
        );
        stats.add(&gs_stats);

        let n_reduced = reduced_keys.len();
        let mut rank = vec![0u32; n_reduced];
        for (pos, &src) in gperm.iter().enumerate() {
            rank[src as usize] = pos as u32;
        }
        let gperm_ref = &gperm;
        let (_, inv_stats) = launch_map_phased(
            device,
            "spgemm_rank_invert",
            Phase::GlobalSort,
            LaunchConfig::new(
                n_reduced.div_ceil(cfg.global_sort_nv).max(1),
                cfg.block_threads,
            ),
            |cta| {
                let lo = cta.cta_id * cfg.global_sort_nv;
                let hi = (lo + cfg.global_sort_nv).min(n_reduced);
                cta.read_coalesced(hi - lo, 4);
                cta.scatter(gperm_ref[lo..hi].iter().map(|&p| p as usize), 4);
            },
        );
        phases.global_sort += inv_stats.sim_ms;
        ledger.charge(
            Phase::GlobalSort,
            inv_stats.sim_ms,
            inv_stats.totals.dram_bytes(),
        );
        stats.add(&inv_stats);

        let sorted_keys: Vec<u64> = gperm.iter().map(|&p| reduced_keys[p as usize]).collect();

        // ---- Phase 4: product compute (charged; numerics discarded) ---
        let (_, pc_stats) = product::product_compute(device, a, b, &exp, &tiles, &rank, cfg);
        phases.product_compute = pc_stats.sim_ms;
        ledger.charge(
            Phase::ProductCompute,
            pc_stats.sim_ms,
            pc_stats.totals.dram_bytes(),
        );
        stats.add(&pc_stats);

        // ---- Phase 5: product reduce (charged; run map kept) ----------
        let zeros = vec![0.0f64; sorted_keys.len()];
        let (final_keys, _, pr_stats) = product::product_reduce(device, &sorted_keys, &zeros, cfg);
        phases.product_reduce = pr_stats.sim_ms;
        ledger.charge(
            Phase::ProductReduce,
            pr_stats.sim_ms,
            pr_stats.totals.dram_bytes(),
        );
        stats.add(&pr_stats);

        // Sorted position → output index: runs of equal sorted keys.
        let mut run_of = Vec::with_capacity(sorted_keys.len());
        let mut run = 0u32;
        for (i, &k) in sorted_keys.iter().enumerate() {
            if i > 0 && k != sorted_keys[i - 1] {
                run += 1;
            }
            run_of.push(run);
        }
        debug_assert_eq!(final_keys.len(), run as usize + 1);

        // ---- Other: CSR assembly charge + parallel host pattern build -
        let other_stats = super::charge_assemble(device, final_keys.len());
        phases.other = other_stats.sim_ms;
        ledger.charge(
            Phase::Other,
            other_stats.sim_ms,
            other_stats.totals.dram_bytes(),
        );
        stats.add(&other_stats);
        let row_offsets = assemble::row_offsets_from_sorted_keys(a.num_rows, &final_keys);
        let col_idx = assemble::cols_from_keys(&final_keys);

        // Structure maps for the numeric replay.
        let (a_idx, b_pos) = product_sources(a, b, &exp.s, cfg.nv());
        let mut perm = Vec::with_capacity(exp.products);
        let mut head = Vec::with_capacity(exp.products);
        let mut tile_offsets = Vec::with_capacity(tiles.len() + 1);
        tile_offsets.push(0usize);
        for t in &tiles {
            perm.extend(t.perm.iter().copied());
            head.extend(t.head.iter().copied());
            tile_offsets.push(tile_offsets.last().expect("non-empty") + t.unique_keys.len());
        }

        SpgemmPlan {
            a_dims,
            b_dims,
            products: exp.products,
            nv: cfg.nv(),
            a_idx,
            b_pos,
            perm,
            head,
            tile_offsets,
            rank,
            run_of,
            global_sort_nv: cfg.global_sort_nv,
            row_offsets,
            col_idx,
            phases,
            ledger,
            stats,
        }
    }

    /// Per-phase launch/time/DRAM ledger charged at plan build.
    pub fn ledger(&self) -> &PhaseLedger {
        &self.ledger
    }

    /// Intermediate products expanded by the planned multiply.
    pub fn products(&self) -> u64 {
        self.products as u64
    }

    /// Number of nonzeros in the output pattern.
    pub fn output_nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Cached per-phase simulated times, charged once at plan build.
    pub fn phases(&self) -> &PhaseTimes {
        &self.phases
    }

    fn check_inputs(&self, a: &CsrMatrix, b: &CsrMatrix) {
        assert_eq!(
            (a.num_rows, a.num_cols, a.nnz()),
            self.a_dims,
            "matrix A does not match the plan"
        );
        assert_eq!(
            (b.num_rows, b.num_cols, b.nnz()),
            self.b_dims,
            "matrix B does not match the plan"
        );
    }

    /// Steady-state execution: write the output values for `a · b` into a
    /// caller-owned buffer (the pattern lives in the plan), using workspace
    /// scratch for the ordered intermediate array. Performs no heap
    /// allocation once `values` and `ws` have warmed to capacity.
    ///
    /// Returns the simulated milliseconds of the planned pipeline (from the
    /// cached stats — structure work is not re-simulated).
    ///
    /// # Panics
    /// Panics if either matrix does not match the planned patterns.
    pub fn execute_into(
        &self,
        a: &CsrMatrix,
        b: &CsrMatrix,
        values: &mut Vec<f64>,
        ws: &mut Workspace,
    ) -> f64 {
        self.check_inputs(a, b);
        let n_reduced = self.rank.len();
        let out_nnz = self.output_nnz();
        values.clear();
        values.resize(out_nnz, 0.0);
        if self.products == 0 {
            return self.phases.total();
        }

        // Product compute replay: form each tile's products, apply the
        // stored permutation, fold duplicate runs, scatter by rank.
        let mut ordered = ws.take_f64();
        ordered.resize(n_reduced, 0.0);
        let total = self.products;
        let num_tiles = total.div_ceil(self.nv);
        for tile in 0..num_tiles {
            let lo = tile * self.nv;
            let hi = (lo + self.nv).min(total);
            let base = self.tile_offsets[tile];
            let mut local = 0usize;
            let mut cur = 0usize;
            for s in lo..hi {
                let q = lo + self.perm[s] as usize;
                let v = a.values[self.a_idx[q] as usize] * b.values[self.b_pos[q] as usize];
                if self.head[s] {
                    cur = self.rank[base + local] as usize;
                    ordered[cur] = v;
                    local += 1;
                } else {
                    ordered[cur] += v;
                }
            }
        }

        // Product reduce replay: per-tile reduce-by-key with the original
        // tile grouping, cross-tile runs stitched by a second accumulation
        // into the same output slot (the carry of the one-shot kernel).
        let mut last_flushed = usize::MAX;
        let num_rtiles = n_reduced.div_ceil(self.global_sort_nv).max(1);
        for tile in 0..num_rtiles {
            let lo = tile * self.global_sort_nv;
            let hi = (lo + self.global_sort_nv).min(n_reduced);
            let mut i = lo;
            while i < hi {
                let run = self.run_of[i] as usize;
                let mut acc = ordered[i];
                i += 1;
                while i < hi && self.run_of[i] as usize == run {
                    acc += ordered[i];
                    i += 1;
                }
                if run == last_flushed {
                    values[run] += acc;
                } else {
                    values[run] = acc;
                    last_flushed = run;
                }
            }
        }
        ws.put_f64(ordered);
        self.phases.total()
    }

    /// Run the planned multiply, assembling a full [`SpgemmResult`] (clones
    /// the cached pattern and stats). `device` is unused beyond API
    /// symmetry — the cost was charged at plan build.
    pub fn execute(&self, _device: &Device, a: &CsrMatrix, b: &CsrMatrix) -> SpgemmResult {
        let mut values = Vec::new();
        let mut ws = Workspace::new();
        self.execute_into(a, b, &mut values, &mut ws);
        SpgemmResult {
            c: CsrMatrix {
                num_rows: self.a_dims.0,
                num_cols: self.b_dims.1,
                row_offsets: self.row_offsets.clone(),
                col_idx: self.col_idx.clone(),
                values,
            },
            products: self.products as u64,
            phases: self.phases,
            stats: self.stats.clone(),
        }
    }
}

/// Per-product source indices `(a value index, b value index)` in expansion
/// order, computed with the same per-tile chunking the kernels use: each
/// chunk seeks its first A nonzero with one binary search into the product
/// prefix sum, then walks.
fn product_sources(a: &CsrMatrix, b: &CsrMatrix, s: &[usize], nv: usize) -> (Vec<u32>, Vec<u32>) {
    let total = *s.last().expect("non-empty prefix sum");
    if total == 0 {
        return (Vec::new(), Vec::new());
    }
    let chunks = total.div_ceil(nv);
    let parts: Vec<(Vec<u32>, Vec<u32>)> = (0..chunks)
        .into_par_iter()
        .map(|chunk| {
            let lo = chunk * nv;
            let hi = (lo + nv).min(total);
            let mut j = s.partition_point(|&v| v <= lo) - 1;
            let mut a_idx = Vec::with_capacity(hi - lo);
            let mut b_pos = Vec::with_capacity(hi - lo);
            for q in lo..hi {
                while s[j + 1] <= q {
                    j += 1;
                }
                let t = q - s[j];
                a_idx.push(j as u32);
                b_pos.push((b.row_offsets[a.col_idx[j] as usize] + t) as u32);
            }
            (a_idx, b_pos)
        })
        .collect();
    let mut a_idx = Vec::with_capacity(total);
    let mut b_pos = Vec::with_capacity(total);
    for (ai, bp) in parts {
        a_idx.extend(ai);
        b_pos.extend(bp);
    }
    (a_idx, b_pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spgemm::merge_spgemm;
    use mps_sparse::gen;
    use mps_sparse::ops::spgemm_ref;

    fn dev() -> Device {
        Device::titan()
    }

    #[test]
    fn plan_execute_matches_one_shot_bitwise() {
        let a = gen::random_uniform(120, 90, 5.0, 3.0, 41);
        let b = gen::random_uniform(90, 110, 4.0, 2.0, 42);
        let cfg = SpgemmConfig::default();
        let one_shot = merge_spgemm(&dev(), &a, &b, &cfg);
        let plan = SpgemmPlan::new(&dev(), &a, &b, &cfg);
        let planned = plan.execute(&dev(), &a, &b);
        assert_eq!(
            planned.c, one_shot.c,
            "planned result must be byte-identical"
        );
        assert_eq!(planned.products, one_shot.products);
        assert_eq!(planned.phases, one_shot.phases);
    }

    #[test]
    fn plan_reuse_with_new_values() {
        let a = gen::random_uniform(80, 80, 5.0, 3.0, 51);
        let b = gen::random_uniform(80, 80, 5.0, 3.0, 52);
        let cfg = SpgemmConfig {
            block_threads: 16,
            items_per_thread: 3,
            global_sort_nv: 64,
        };
        let plan = SpgemmPlan::new(&dev(), &a, &b, &cfg);
        let mut a2 = a.clone();
        for (i, v) in a2.values.iter_mut().enumerate() {
            *v = (i % 7) as f64 - 2.5;
        }
        let planned = plan.execute(&dev(), &a2, &b);
        assert!(planned.c.approx_eq(&spgemm_ref(&a2, &b), 1e-12));
    }

    #[test]
    fn tiny_tiles_cross_tile_runs_replay_exactly() {
        // Runs spanning reduce-tile boundaries exercise the carry stitch.
        let a = gen::random_uniform(30, 30, 4.0, 2.0, 61);
        let b = gen::random_uniform(30, 30, 4.0, 2.0, 62);
        let cfg = SpgemmConfig {
            block_threads: 1,
            items_per_thread: 2,
            global_sort_nv: 3,
        };
        let one_shot = merge_spgemm(&dev(), &a, &b, &cfg);
        let plan = SpgemmPlan::new(&dev(), &a, &b, &cfg);
        let planned = plan.execute(&dev(), &a, &b);
        assert_eq!(planned.c, one_shot.c);
    }

    #[test]
    fn empty_product_space_plan() {
        let a = CsrMatrix::zeros(5, 4);
        let b = CsrMatrix::zeros(4, 6);
        let plan = SpgemmPlan::new(&dev(), &a, &b, &SpgemmConfig::default());
        assert_eq!(plan.products(), 0);
        let r = plan.execute(&dev(), &a, &b);
        assert_eq!(r.c.nnz(), 0);
        assert_eq!((r.c.num_rows, r.c.num_cols), (5, 6));
    }

    #[test]
    fn execute_into_reuses_buffers() {
        let a = gen::random_uniform(60, 60, 5.0, 2.0, 71);
        let b = gen::random_uniform(60, 60, 5.0, 2.0, 72);
        let plan = SpgemmPlan::new(&dev(), &a, &b, &SpgemmConfig::default());
        let mut ws = Workspace::new();
        let mut values = Vec::new();
        plan.execute_into(&a, &b, &mut values, &mut ws);
        let expected = values.clone();
        let cap = values.capacity();
        let ptr = values.as_ptr();
        plan.execute_into(&a, &b, &mut values, &mut ws);
        assert_eq!(values, expected);
        assert_eq!(values.capacity(), cap);
        assert_eq!(values.as_ptr(), ptr, "warm buffer must be reused in place");
    }

    #[test]
    #[should_panic(expected = "does not match the plan")]
    fn plan_rejects_mismatched_operand() {
        let a = gen::random_uniform(20, 20, 4.0, 2.0, 81);
        let b = gen::random_uniform(20, 20, 4.0, 2.0, 82);
        let other = gen::random_uniform(20, 20, 4.0, 2.0, 83);
        let plan = SpgemmPlan::new(&dev(), &a, &b, &SpgemmConfig::default());
        plan.execute(&dev(), &other, &b);
    }
}
