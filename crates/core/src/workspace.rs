//! Reusable buffer arena for plan executions.
//!
//! The plan/execute split (see [`crate::spmv::SpmvPlan`],
//! [`crate::spadd::SpAddPlan`], [`crate::spgemm::SpgemmPlan`]) moves every
//! structure-dependent phase to plan-build time; what remains per execution
//! is pure numeric work over precomputed maps. The last source of per-call
//! host overhead is allocation of the large intermediate buffers (expanded
//! values, per-CTA carries, assembled outputs). A [`Workspace`] owns those
//! buffers across calls: `take_*` hands out a cleared buffer whose capacity
//! survives from previous executions, `put_*` returns it. After a warm-up
//! execution, steady-state plan executions perform **zero** heap
//! allocations (enforced by the repository's counting-allocator test).

/// Pool of reusable scratch buffers shared by plan executions.
///
/// Buffers are typed pools: taking pops the largest-capacity buffer (so a
/// workspace shared between differently sized plans converges to the
/// high-water capacity), putting clears and returns it. The pools start
/// empty; nothing is allocated until an execution asks for scratch.
#[derive(Debug, Default)]
pub struct Workspace {
    f64_bufs: Vec<Vec<f64>>,
    carry_bufs: Vec<Vec<(usize, f64)>>,
    /// Largest capacity (elements) any returned `f64` buffer has reached.
    f64_high_water: usize,
    /// Largest capacity (elements) any returned carry buffer has reached.
    carry_high_water: usize,
}

impl Workspace {
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// Borrow an empty `f64` scratch buffer, retaining its old capacity.
    pub fn take_f64(&mut self) -> Vec<f64> {
        take_largest(&mut self.f64_bufs)
    }

    /// Return an `f64` scratch buffer to the pool.
    pub fn put_f64(&mut self, mut buf: Vec<f64>) {
        buf.clear();
        self.f64_high_water = self.f64_high_water.max(buf.capacity());
        self.f64_bufs.push(buf);
    }

    /// Borrow an empty carry buffer (`(row, partial sum)` pairs).
    pub fn take_carries(&mut self) -> Vec<(usize, f64)> {
        take_largest(&mut self.carry_bufs)
    }

    /// Return a carry buffer to the pool.
    pub fn put_carries(&mut self, mut buf: Vec<(usize, f64)>) {
        buf.clear();
        self.carry_high_water = self.carry_high_water.max(buf.capacity());
        self.carry_bufs.push(buf);
    }

    /// High-water capacities in elements: the largest `f64` buffer and the
    /// largest carry buffer ever returned to this workspace. Unlike
    /// [`Workspace::bytes_held`], the marks do not drop when buffers are
    /// checked out, so a pool can size fresh arenas from them.
    pub fn high_water_marks(&self) -> (usize, usize) {
        (self.f64_high_water, self.carry_high_water)
    }

    /// High-water footprint in bytes (largest `f64` buffer plus largest
    /// carry buffer this workspace has ever pooled).
    pub fn high_water_bytes(&self) -> usize {
        self.f64_high_water * std::mem::size_of::<f64>()
            + self.carry_high_water * std::mem::size_of::<(usize, f64)>()
    }

    /// Pre-size the pools so the first executions do not grow buffers:
    /// ensures one pooled `f64` buffer of at least `f64_elems` capacity and
    /// one carry buffer of at least `carry_elems`. A serving pool calls
    /// this with the high-water marks observed on retired workspaces so
    /// fresh arenas start at steady-state size.
    pub fn prewarm(&mut self, f64_elems: usize, carry_elems: usize) {
        if f64_elems > 0 && self.f64_bufs.iter().all(|b| b.capacity() < f64_elems) {
            self.put_f64(Vec::with_capacity(f64_elems));
        }
        if carry_elems > 0 && self.carry_bufs.iter().all(|b| b.capacity() < carry_elems) {
            self.put_carries(Vec::with_capacity(carry_elems));
        }
    }

    /// Total bytes of capacity currently held by the pools.
    pub fn bytes_held(&self) -> usize {
        let f = self
            .f64_bufs
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<f64>())
            .sum::<usize>();
        let c = self
            .carry_bufs
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<(usize, f64)>())
            .sum::<usize>();
        f + c
    }
}

/// Pop the pooled buffer with the largest capacity (or a fresh empty one).
fn take_largest<T>(pool: &mut Vec<Vec<T>>) -> Vec<T> {
    let best = pool
        .iter()
        .enumerate()
        .max_by_key(|(_, b)| b.capacity())
        .map(|(i, _)| i);
    match best {
        Some(i) => pool.swap_remove(i),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_retains_capacity() {
        let mut ws = Workspace::new();
        let mut b = ws.take_f64();
        assert_eq!(b.capacity(), 0);
        b.resize(1000, 0.0);
        let cap = b.capacity();
        ws.put_f64(b);
        let b2 = ws.take_f64();
        assert!(b2.is_empty());
        assert_eq!(b2.capacity(), cap);
    }

    #[test]
    fn take_prefers_largest_buffer() {
        let mut ws = Workspace::new();
        let mut small = ws.take_f64();
        small.reserve(10);
        let mut big = ws.take_f64();
        big.reserve(10_000);
        let big_cap = big.capacity();
        ws.put_f64(small);
        ws.put_f64(big);
        assert_eq!(ws.take_f64().capacity(), big_cap);
    }

    #[test]
    fn bytes_held_counts_pool_capacity() {
        let mut ws = Workspace::new();
        assert_eq!(ws.bytes_held(), 0);
        let mut b = ws.take_f64();
        b.resize(128, 0.0);
        ws.put_f64(b);
        assert!(ws.bytes_held() >= 128 * std::mem::size_of::<f64>());
    }

    #[test]
    fn high_water_persists_across_checkouts() {
        let mut ws = Workspace::new();
        assert_eq!(ws.high_water_bytes(), 0);
        let mut b = ws.take_f64();
        b.resize(1000, 0.0);
        let cap = b.capacity();
        ws.put_f64(b);
        let mut c = ws.take_carries();
        c.resize(10, (0, 0.0));
        let ccap = c.capacity();
        ws.put_carries(c);
        let want = cap * std::mem::size_of::<f64>() + ccap * std::mem::size_of::<(usize, f64)>();
        assert_eq!(ws.high_water_bytes(), want);
        assert_eq!(ws.high_water_marks(), (cap, ccap));
        // Checking the buffers back out empties the pools but must not
        // lower the marks — that is what lets a pool size fresh arenas.
        let _b = ws.take_f64();
        let _c = ws.take_carries();
        assert_eq!(ws.bytes_held(), 0);
        assert_eq!(ws.high_water_bytes(), want);
        // Smaller buffers never shrink the marks.
        ws.put_f64(vec![0.0; 10]);
        assert_eq!(ws.high_water_marks().0, cap);
    }

    #[test]
    fn prewarm_sizes_first_take() {
        let mut ws = Workspace::new();
        ws.prewarm(4096, 128);
        assert!(ws.take_f64().capacity() >= 4096);
        assert!(ws.take_carries().capacity() >= 128);
        assert!(ws.high_water_bytes() >= 4096 * 8 + 128 * 16);
        // Prewarming below an existing capacity adds nothing.
        let mut ws2 = Workspace::new();
        ws2.put_f64(Vec::with_capacity(100));
        ws2.prewarm(50, 0);
        assert_eq!(ws2.take_f64().capacity(), 100);
        assert_eq!(ws2.take_f64().capacity(), 0, "no second buffer pooled");
    }

    #[test]
    fn carry_pool_round_trips() {
        let mut ws = Workspace::new();
        let mut c = ws.take_carries();
        c.push((3, 1.5));
        ws.put_carries(c);
        let c2 = ws.take_carries();
        assert!(c2.is_empty());
        assert!(c2.capacity() >= 1);
    }
}
