//! Pattern deltas: small COO-style edit sets applied to a CSR matrix
//! through the balanced-path union (Section III-B machinery).
//!
//! Streaming workloads — evolving graphs, time-stepped PDE meshes — mutate
//! a matrix by a handful of entries per round. Rebuilding the CSR (and
//! every cached plan keyed on its pattern) from scratch prices each round
//! at full replan cost. A [`CsrDelta`] instead rides the same provenance
//! union [`crate::spadd::SpAddPlan`] is built on: the matrix expands to
//! packed (row,col) keys, the delta's (already sorted) keys form the
//! second operand, and one balanced-path union pass merges them. Matched
//! keys resolve in the delta's favour (an upsert replaces the value, a
//! remove drops the entry); delta-only upserts insert; delta-only removes
//! are no-ops. The output is assembled with the same helpers as SpAdd, so
//! cost scales with `|A| + |delta|`, never with pattern churn.
//!
//! Whether the *pattern* changed (any insert or remove took effect) is
//! reported on the result — value-only deltas keep the pattern
//! fingerprint, and therefore every cached plan, valid.

use std::collections::BTreeMap;

use mps_merge::set_ops::{set_op_pairs, SetOp, SetOpStats};
use mps_simt::grid::LaunchStats;
use mps_simt::Device;
use mps_sparse::{pack_key, CooMatrix, CsrMatrix};

use crate::assemble;
use crate::config::SpAddConfig;
use crate::error::PlanError;
use crate::spadd::{expand_keys, NONE};

/// A small, ordered edit set over one matrix: upserts (insert-or-replace a
/// value at a coordinate) and removes (drop the entry if present). Later
/// entries on the same coordinate override earlier ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CsrDelta {
    /// `(row, col, Some(v))` is an upsert, `(row, col, None)` a remove,
    /// in insertion order.
    entries: Vec<(u32, u32, Option<f64>)>,
}

impl CsrDelta {
    pub fn new() -> CsrDelta {
        CsrDelta::default()
    }

    /// Insert `value` at `(row, col)`, replacing any existing entry.
    pub fn upsert(&mut self, row: u32, col: u32, value: f64) -> &mut Self {
        self.entries.push((row, col, Some(value)));
        self
    }

    /// Drop the entry at `(row, col)` if present (no-op otherwise).
    pub fn remove(&mut self, row: u32, col: u32) -> &mut Self {
        self.entries.push((row, col, None));
        self
    }

    /// Edits recorded (before coordinate dedup).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded edits in insertion order.
    pub fn entries(&self) -> &[(u32, u32, Option<f64>)] {
        &self.entries
    }

    /// The delta that turns `old` into `new`: an upsert for every entry of
    /// `new` that is absent from `old` or carries different bits, and a
    /// remove for every entry of `old` absent from `new`. Applying the
    /// result to `old` reproduces `new` bitwise.
    pub fn between(old: &CsrMatrix, new: &CsrMatrix) -> Result<CsrDelta, PlanError> {
        if (old.num_rows, old.num_cols) != (new.num_rows, new.num_cols) {
            return Err(PlanError::ShapeMismatch {
                left: (old.num_rows, old.num_cols),
                right: (new.num_rows, new.num_cols),
            });
        }
        let mut delta = CsrDelta::new();
        for r in 0..old.num_rows {
            let (olo, ohi) = (old.row_offsets[r], old.row_offsets[r + 1]);
            let (nlo, nhi) = (new.row_offsets[r], new.row_offsets[r + 1]);
            let (mut i, mut j) = (olo, nlo);
            while i < ohi || j < nhi {
                let oc = if i < ohi { old.col_idx[i] } else { u32::MAX };
                let nc = if j < nhi { new.col_idx[j] } else { u32::MAX };
                if oc < nc || j >= nhi {
                    delta.remove(r as u32, oc);
                    i += 1;
                } else if nc < oc || i >= ohi {
                    delta.upsert(r as u32, nc, new.values[j]);
                    j += 1;
                } else {
                    if old.values[i].to_bits() != new.values[j].to_bits() {
                        delta.upsert(r as u32, nc, new.values[j]);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        Ok(delta)
    }

    /// Collapse the edit list to one effect per coordinate (last wins),
    /// validating bounds against the target shape.
    fn resolve(
        &self,
        num_rows: usize,
        num_cols: usize,
    ) -> Result<BTreeMap<(u32, u32), Option<f64>>, PlanError> {
        let mut map = BTreeMap::new();
        for &(r, c, v) in &self.entries {
            if r as usize >= num_rows || c as usize >= num_cols {
                return Err(PlanError::DeltaOutOfBounds {
                    row: r,
                    col: c,
                    num_rows,
                    num_cols,
                });
            }
            map.insert((r, c), v);
        }
        Ok(map)
    }
}

/// Result of [`apply_delta`]: the mutated matrix plus what the delta did
/// and the simulated cost of the union pass that did it.
#[derive(Debug, Clone)]
pub struct DeltaApplied {
    pub c: CsrMatrix,
    /// Upserts that created a new entry.
    pub inserted: usize,
    /// Upserts that replaced an existing entry's value.
    pub updated: usize,
    /// Removes that dropped an existing entry (no-op removes not counted).
    pub removed: usize,
    /// Cost of expanding the matrix to keys.
    pub expand: LaunchStats,
    /// Per-phase cost of the balanced-path union.
    pub union: SetOpStats,
}

impl DeltaApplied {
    /// Whether the sparsity pattern changed (any insert or effective
    /// remove). Value-only deltas keep the pattern fingerprint — and every
    /// plan cached under it — valid.
    pub fn pattern_changed(&self) -> bool {
        self.inserted > 0 || self.removed > 0
    }

    /// Total simulated milliseconds of the apply (expand + union).
    pub fn sim_ms(&self) -> f64 {
        self.expand.sim_ms + self.union.sim_ms()
    }
}

/// Apply `delta` to `a` through one balanced-path union pass, producing
/// the mutated matrix. Errors if any delta coordinate is out of bounds.
pub fn apply_delta(
    device: &Device,
    a: &CsrMatrix,
    delta: &CsrDelta,
    cfg: &SpAddConfig,
) -> Result<DeltaApplied, PlanError> {
    if cfg.nv <= 1 {
        return Err(PlanError::InvalidConfig(
            "SpAdd nv must exceed 1 (balanced tiles shift by one)",
        ));
    }
    let edits = delta.resolve(a.num_rows, a.num_cols)?;

    let (a_keys, expand) = expand_keys(device, a, cfg.nv);
    // The resolved map iterates in (row, col) order, which packed keys
    // preserve — the delta side arrives sorted for free.
    let d_keys: Vec<u64> = edits.keys().map(|&(r, c)| pack_key(r, c)).collect();
    let d_vals: Vec<Option<f64>> = edits.values().copied().collect();

    // Provenance pairs exactly as in SpAdd: `(i, NONE)` from the matrix,
    // `(NONE, j)` from the delta, matched keys fuse to `(i, j)`.
    let a_src: Vec<(u32, u32)> = (0..a.nnz() as u32).map(|i| (i, NONE)).collect();
    let d_src: Vec<(u32, u32)> = (0..d_keys.len() as u32).map(|j| (NONE, j)).collect();
    let (keys, src, union) = set_op_pairs(
        device,
        SetOp::Union,
        &a_keys,
        &a_src,
        &d_keys,
        &d_src,
        |x, y| (x.0, y.1),
        cfg.nv,
    );

    // Resolve each union entry: the delta side wins on a match, removes
    // drop, untouched matrix entries copy their value bits verbatim.
    let (mut inserted, mut updated, mut removed) = (0usize, 0usize, 0usize);
    let mut out_keys = Vec::with_capacity(keys.len());
    let mut values = Vec::with_capacity(keys.len());
    for (&key, &(i, j)) in keys.iter().zip(&src) {
        let v = if j == NONE {
            Some(a.values[i as usize])
        } else {
            match d_vals[j as usize] {
                Some(v) => {
                    if i == NONE {
                        inserted += 1;
                    } else {
                        updated += 1;
                    }
                    Some(v)
                }
                None => {
                    if i != NONE {
                        removed += 1;
                    }
                    None
                }
            }
        };
        if let Some(v) = v {
            out_keys.push(key);
            values.push(v);
        }
    }
    let row_offsets = assemble::row_offsets_from_sorted_keys(a.num_rows, &out_keys);
    let col_idx = assemble::cols_from_keys(&out_keys);
    Ok(DeltaApplied {
        c: CsrMatrix {
            num_rows: a.num_rows,
            num_cols: a.num_cols,
            row_offsets,
            col_idx,
            values,
        },
        inserted,
        updated,
        removed,
        expand,
        union,
    })
}

/// Reference delta application: a plain coordinate map, no union pass.
/// Used by tests to pin [`apply_delta`]'s semantics.
pub fn apply_delta_reference(a: &CsrMatrix, delta: &CsrDelta) -> Result<CsrMatrix, PlanError> {
    let edits = delta.resolve(a.num_rows, a.num_cols)?;
    let mut map: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    for r in 0..a.num_rows {
        for i in a.row_offsets[r]..a.row_offsets[r + 1] {
            map.insert((r as u32, a.col_idx[i]), a.values[i]);
        }
    }
    for ((r, c), v) in edits {
        match v {
            Some(v) => {
                map.insert((r, c), v);
            }
            None => {
                map.remove(&(r, c));
            }
        }
    }
    let mut coo = CooMatrix::new(a.num_rows, a.num_cols);
    for ((r, c), v) in map {
        coo.push(r, c, v);
    }
    Ok(coo.to_csr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::gen;

    fn dev() -> Device {
        Device::titan()
    }

    fn cfg() -> SpAddConfig {
        SpAddConfig::default()
    }

    /// Deterministic mixed delta touching existing and fresh coordinates.
    fn mixed_delta(a: &CsrMatrix, seed: u64) -> CsrDelta {
        let mut d = CsrDelta::new();
        // Upsert over some existing entries, remove others.
        let mut k = seed as usize;
        for r in 0..a.num_rows {
            for i in a.row_offsets[r]..a.row_offsets[r + 1] {
                k = k
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                match k % 11 {
                    0 => {
                        d.upsert(r as u32, a.col_idx[i], (k % 100) as f64 / 7.0);
                    }
                    1 => {
                        d.remove(r as u32, a.col_idx[i]);
                    }
                    _ => {}
                }
            }
        }
        // Fresh inserts and no-op removes at arbitrary coordinates.
        for t in 0..8u32 {
            let r = (seed as u32 + 3 * t) % a.num_rows as u32;
            let c = (seed as u32 + 5 * t) % a.num_cols as u32;
            if t % 3 == 0 {
                d.remove(r, c);
            } else {
                d.upsert(r, c, t as f64 - 2.5);
            }
        }
        d
    }

    #[test]
    fn union_apply_matches_reference_bitwise() {
        for (m, seed) in [
            (gen::random_uniform(120, 100, 5.0, 3.0, 7), 1u64),
            (gen::power_law(150, 150, 1, 1.5, 60, 9), 2),
            (gen::stencil_5pt(12, 12), 3),
        ] {
            let d = mixed_delta(&m, seed);
            let got = apply_delta(&dev(), &m, &d, &cfg()).expect("in bounds");
            let want = apply_delta_reference(&m, &d).expect("in bounds");
            assert_eq!(got.c, want, "union apply must match the reference");
            got.c.validate().expect("well-formed output");
            assert!(got.sim_ms() > 0.0);
        }
    }

    #[test]
    fn empty_delta_is_identity_and_value_only_keeps_pattern() {
        let m = gen::random_uniform(80, 80, 4.0, 2.0, 5);
        let r = apply_delta(&dev(), &m, &CsrDelta::new(), &cfg()).expect("ok");
        assert_eq!(r.c, m, "empty delta must reproduce the matrix bitwise");
        assert!(!r.pattern_changed());

        // Value-only: upsert existing coordinates.
        let mut d = CsrDelta::new();
        d.upsert(0, m.col_idx[0], 42.0);
        let r = apply_delta(&dev(), &m, &d, &cfg()).expect("ok");
        assert!(!r.pattern_changed());
        assert_eq!(r.updated, 1);
        assert_eq!(
            r.c.pattern_fingerprint(),
            m.pattern_fingerprint(),
            "value-only delta keeps the pattern fingerprint"
        );
        assert_eq!(r.c.values[0], 42.0);
    }

    #[test]
    fn inserts_removes_and_last_write_wins() {
        let m = gen::stencil_5pt(6, 6);
        let fresh = {
            // A coordinate not in the 5-point stencil pattern.
            let (r, c) = (0u32, 5u32);
            assert!(!m.col_idx[m.row_offsets[0]..m.row_offsets[1]].contains(&c));
            (r, c)
        };
        let mut d = CsrDelta::new();
        d.upsert(fresh.0, fresh.1, 1.0);
        d.remove(fresh.0, fresh.1);
        d.upsert(fresh.0, fresh.1, 9.0); // last wins
        d.remove(2, 35); // out of pattern: no-op
        let r = apply_delta(&dev(), &m, &d, &cfg()).expect("ok");
        assert_eq!((r.inserted, r.updated, r.removed), (1, 0, 0));
        assert!(r.pattern_changed());
        assert_eq!(r.c.nnz(), m.nnz() + 1);
        assert_eq!(r.c, apply_delta_reference(&m, &d).expect("ok"));
    }

    #[test]
    fn between_roundtrips_bitwise() {
        let old = gen::random_uniform(100, 90, 5.0, 3.0, 11);
        let d = mixed_delta(&old, 13);
        let new = apply_delta_reference(&old, &d).expect("ok");
        let between = CsrDelta::between(&old, &new).expect("same shape");
        let replayed = apply_delta(&dev(), &old, &between, &cfg()).expect("ok");
        assert_eq!(replayed.c, new, "between(old, new) applied to old is new");
        // Identical matrices produce an empty delta.
        assert!(CsrDelta::between(&old, &old)
            .expect("same shape")
            .is_empty());
        // Shape mismatch is typed.
        let other = gen::stencil_5pt(3, 3);
        assert!(matches!(
            CsrDelta::between(&old, &other),
            Err(PlanError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn out_of_bounds_entries_are_typed_errors() {
        let m = gen::stencil_5pt(4, 4);
        let mut d = CsrDelta::new();
        d.upsert(99, 0, 1.0);
        assert!(matches!(
            apply_delta(&dev(), &m, &d, &cfg()),
            Err(PlanError::DeltaOutOfBounds { row: 99, .. })
        ));
        let mut d = CsrDelta::new();
        d.remove(0, 99);
        assert!(matches!(
            apply_delta_reference(&m, &d),
            Err(PlanError::DeltaOutOfBounds { col: 99, .. })
        ));
    }
}
