//! A cuSPARSE-like closed-source comparator, simulated.
//!
//! The paper compares against cuSPARSE as an opaque package. Its observed
//! behaviour across the figures is that of a well-tuned *row-structured*
//! (segmentation-aware) library: excellent on regular matrices (Dense,
//! Protein, Wind), degraded on power-law and short-wide inputs (Webbase,
//! LP), and — for SpGEMM — runtime essentially uncorrelated with the flat
//! product count (ρ = −0.02 in Figure 10b). This module implements exactly
//! that class of algorithm:
//!
//! * SpMV: vectorized CSR with an *adaptive* threads-per-row choice driven
//!   by the matrix's average row length;
//! * SpAdd: row-pair merge, one warp per output row;
//! * SpGEMM: row-wise hash-table accumulation with a shared-memory table
//!   and a slow global-memory fallback for rows whose intermediate
//!   products overflow it.

use mps_simt::grid::{launch_map_named, LaunchConfig, LaunchStats};
use mps_simt::Device;
use mps_sparse::CsrMatrix;

/// Threads assigned per row by the adaptive SpMV heuristic.
fn threads_per_row(avg_row: f64, warp: usize) -> usize {
    let mut t = 2usize;
    while (t as f64) < avg_row && t < warp {
        t *= 2;
    }
    t
}

/// Adaptive vectorized CSR SpMV (the Cusparse bars of Figure 5).
pub fn spmv(device: &Device, a: &CsrMatrix, x: &[f64]) -> (Vec<f64>, LaunchStats) {
    assert_eq!(x.len(), a.num_cols, "x length must equal num_cols");
    let rows = a.num_rows;
    let warp = device.props.warp_size;
    let avg = if rows == 0 {
        0.0
    } else {
        a.nnz() as f64 / rows as f64
    };
    let tpr = threads_per_row(avg, warp);
    let threads = 128;
    let rows_per_cta = threads / tpr;
    let num_ctas = rows.div_ceil(rows_per_cta).max(1);
    let (tiles, stats) = launch_map_named(
        device,
        "cusparse_spmv",
        LaunchConfig::new(num_ctas, threads),
        |cta| {
            let row_lo = cta.cta_id * rows_per_cta;
            let row_hi = (row_lo + rows_per_cta).min(rows);
            let mut y = Vec::with_capacity(row_hi - row_lo);
            for r in row_lo..row_hi {
                let len = a.row_len(r);
                cta.read_coalesced(len, 12);
                cta.gather(a.row_cols(r).iter().map(|&c| c as usize), 8);
                // Each SIMD step engages tpr lanes; the thread group reduces
                // partials in log2(tpr) steps.
                let steps = len.div_ceil(tpr).max(1) as u64;
                cta.alu(steps * tpr as u64 * 2 + tpr.ilog2().max(1) as u64 * tpr as u64);
                let mut acc = 0.0;
                for (c, v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
                    acc += v * x[*c as usize];
                }
                y.push(acc);
            }
            cta.write_coalesced(row_hi - row_lo, 8);
            y
        },
    );
    let mut y = Vec::with_capacity(rows);
    for t in tiles {
        y.extend(t);
    }
    (y, stats)
}

/// Row-merge SpAdd in CSR, one warp per output row (the Cusparse bars of
/// Figure 7; cuSPARSE's `csrgeam` operates directly on CSR).
pub fn spadd(device: &Device, a: &CsrMatrix, b: &CsrMatrix) -> (CsrMatrix, LaunchStats) {
    assert_eq!(
        (a.num_rows, a.num_cols),
        (b.num_rows, b.num_cols),
        "SpAdd operands must have identical shape"
    );
    let rows = a.num_rows;
    let warp = device.props.warp_size;
    let rows_per_cta = (128 / warp).max(1);
    let num_ctas = rows.div_ceil(rows_per_cta).max(1);
    let (tiles, stats) = launch_map_named(
        device,
        "cusparse_spadd",
        LaunchConfig::new(num_ctas, 128),
        |cta| {
            let row_lo = cta.cta_id * rows_per_cta;
            let row_hi = (row_lo + rows_per_cta).min(rows);
            let mut out: Vec<(u32, f64)> = Vec::new();
            let mut lens = Vec::with_capacity(row_hi - row_lo);
            for r in row_lo..row_hi {
                let (ac, av) = (a.row_cols(r), a.row_vals(r));
                let (bc, bv) = (b.row_cols(r), b.row_vals(r));
                cta.read_coalesced(ac.len() + bc.len(), 12);
                cta.alu(3 * (ac.len() + bc.len()) as u64);
                let before = out.len();
                let (mut i, mut j) = (0, 0);
                while i < ac.len() || j < bc.len() {
                    if j >= bc.len() || (i < ac.len() && ac[i] < bc[j]) {
                        out.push((ac[i], av[i]));
                        i += 1;
                    } else if i >= ac.len() || bc[j] < ac[i] {
                        out.push((bc[j], bv[j]));
                        j += 1;
                    } else {
                        out.push((ac[i], av[i] + bv[j]));
                        i += 1;
                        j += 1;
                    }
                }
                lens.push(out.len() - before);
                cta.write_coalesced(out.len() - before, 12);
            }
            (lens, out)
        },
    );
    let mut row_offsets = vec![0usize; rows + 1];
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    let mut r = 0usize;
    for (lens, out) in tiles {
        for len in lens {
            row_offsets[r + 1] = row_offsets[r] + len;
            r += 1;
        }
        for (c, v) in out {
            col_idx.push(c);
            values.push(v);
        }
    }
    (
        CsrMatrix {
            num_rows: rows,
            num_cols: a.num_cols,
            row_offsets,
            col_idx,
            values,
        },
        stats,
    )
}

/// Hash-table capacity (entries) assumed available in shared memory.
const SHARED_HASH_CAPACITY: usize = 2048;
/// Cost multiplier for rows that spill the hash table to global memory.
const GLOBAL_FALLBACK_PENALTY: u64 = 24;
/// Fixed per-row thread-ops for the multi-kernel row pipeline (size
/// analysis, bin assignment, hash-table initialization). Row-structured
/// libraries pay this regardless of how little work the row holds — the
/// reason their runtime decouples from the flat product count on suites
/// with many small rows (Figure 10b).
const ROW_SETUP_THREAD_OPS: u64 = 150_000;

/// Row-wise hash-based SpGEMM (the Cusparse bars of Figure 9).
///
/// Each output row accumulates its products in a hash table: shared memory
/// when the row's intermediate product count fits, a global-memory table
/// at [`GLOBAL_FALLBACK_PENALTY`]x cost otherwise. Runtime is governed by
/// per-row product counts and the hash traffic, not the flat total — which
/// is why its Figure 10 correlation with products collapses on skewed
/// suites.
pub fn spgemm(device: &Device, a: &CsrMatrix, b: &CsrMatrix) -> (CsrMatrix, LaunchStats) {
    assert_eq!(a.num_cols, b.num_rows, "inner dimensions must agree");
    let rows = a.num_rows;
    let num_ctas = rows.max(1); // one CTA per output row
    let (tiles, stats) = launch_map_named(
        device,
        "cusparse_spgemm_row",
        LaunchConfig::new(num_ctas, 128),
        |cta| {
            let r = cta.cta_id;
            if r >= rows {
                return (Vec::new(), Vec::new());
            }
            // Row products: every referenced B row streams through the table.
            let mut products = 0usize;
            for &k in a.row_cols(r) {
                products += b.row_len(k as usize);
            }
            cta.read_coalesced(a.row_len(r), 12);
            cta.alu(ROW_SETUP_THREAD_OPS);
            let spills = products > SHARED_HASH_CAPACITY;
            let per_insert_alu = 6u64;
            if spills {
                // Global-memory hash: every probe is an irregular DRAM access.
                cta.alu(products as u64 * per_insert_alu * GLOBAL_FALLBACK_PENALTY);
                cta.gather((0..products).map(|p| (p * 2654435761) % (1 << 22)), 16);
            } else {
                cta.alu(products as u64 * per_insert_alu);
                cta.shmem(3 * products as u64);
            }
            // Gather the referenced B segments.
            cta.gather(0..products, 12);

            // Semantics: dense-marker accumulation, then sort the output row.
            let mut acc: Vec<(u32, f64)> = Vec::new();
            let mut marker: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for (k, av) in a.row_cols(r).iter().zip(a.row_vals(r)) {
                let k = *k as usize;
                for (c, bv) in b.row_cols(k).iter().zip(b.row_vals(k)) {
                    match marker.get(c) {
                        Some(&slot) => acc[slot].1 += av * bv,
                        None => {
                            marker.insert(*c, acc.len());
                            acc.push((*c, av * bv));
                        }
                    }
                }
            }
            acc.sort_unstable_by_key(|&(c, _)| c);
            let sort_ops =
                (acc.len() as u64) * (64 - (acc.len() as u64).max(1).leading_zeros()) as u64;
            cta.alu(sort_ops);
            cta.write_coalesced(acc.len(), 12);
            let (cols, vals): (Vec<u32>, Vec<f64>) = acc.into_iter().unzip();
            (cols, vals)
        },
    );
    let mut row_offsets = vec![0usize; rows + 1];
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    // The grid is clamped to one CTA even for a 0-row A, so the launch can
    // hand back more tiles than output rows; only the first `rows` carry
    // row data (the rest are the empty placeholders CTAs beyond `rows`
    // return).
    for (r, (cols, vals)) in tiles.into_iter().enumerate().take(rows) {
        row_offsets[r + 1] = row_offsets[r] + cols.len();
        col_idx.extend(cols);
        values.extend(vals);
    }
    (
        CsrMatrix {
            num_rows: rows,
            num_cols: b.num_cols,
            row_offsets,
            col_idx,
            values,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::gen;
    use mps_sparse::ops::{spadd_ref, spgemm_ref, spmv_ref};

    fn dev() -> Device {
        Device::titan()
    }

    #[test]
    fn adaptive_spmv_matches_reference() {
        for m in [
            gen::fixed_per_row(500, 500, 39, 1),
            gen::random_uniform(500, 500, 6.0, 4.0, 2),
            gen::power_law(500, 500, 1, 1.5, 300, 3),
        ] {
            let x: Vec<f64> = (0..m.num_cols).map(|i| (i % 5) as f64 + 0.5).collect();
            let (y, _) = spmv(&dev(), &m, &x);
            let e = spmv_ref(&m, &x);
            for (a, b) in y.iter().zip(&e) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn threads_per_row_heuristic_scales() {
        assert_eq!(threads_per_row(1.0, 32), 2);
        assert_eq!(threads_per_row(5.0, 32), 8);
        assert_eq!(threads_per_row(100.0, 32), 32);
    }

    #[test]
    fn row_merge_spadd_matches_reference() {
        let a = gen::banded(300, 15.0, 5.0, 60, 4);
        let b = gen::banded(300, 10.0, 4.0, 40, 5);
        let (c, _) = spadd(&dev(), &a, &b);
        assert_eq!(c, spadd_ref(&a, &b));
    }

    #[test]
    fn hash_spgemm_matches_reference() {
        let a = gen::random_uniform(120, 120, 5.0, 3.0, 6);
        let (c, _) = spgemm(&dev(), &a, &a);
        assert!(c.approx_eq(&spgemm_ref(&a, &a), 1e-12));
    }

    #[test]
    fn hash_spgemm_handles_zero_row_operands() {
        // Regression: a 0-row A still launches the clamped one-CTA grid,
        // whose placeholder tile must not be written past row_offsets.
        for (m, k, n) in [(0, 0, 0), (0, 5, 3), (4, 5, 0)] {
            let a = CsrMatrix::zeros(m, k);
            let b = CsrMatrix::zeros(k, n);
            let (c, _) = spgemm(&dev(), &a, &b);
            assert_eq!(c, spgemm_ref(&a, &b), "{m}x{k} * {k}x{n}");
            c.validate().expect("well-formed empty product");
        }
    }

    #[test]
    fn hash_spgemm_spills_cost_more_per_product() {
        // Rows below vs above the shared-memory capacity: per-product cost
        // must jump across the spill threshold. 40 entries/row squared is
        // 1600 products/row (fits); 60 entries/row is 3600 (spills). Row
        // counts are equal so the fixed per-row pipeline cost cancels.
        let fits = gen::fixed_per_row(1000, 1000, 40, 7);
        let spills = gen::fixed_per_row(1000, 1000, 60, 8);
        let (_, sf) = spgemm(&dev(), &fits, &fits);
        let (_, sp) = spgemm(&dev(), &spills, &spills);
        let prods_f = mps_sparse::ops::spgemm_products(&fits, &fits) as f64;
        let prods_s = mps_sparse::ops::spgemm_products(&spills, &spills) as f64;
        let pp_fits = sf.sim_ms / prods_f;
        let pp_spills = sp.sim_ms / prods_s;
        assert!(
            pp_spills > 1.5 * pp_fits,
            "spilled rows should cost more per product: {pp_spills} vs {pp_fits}"
        );
    }

    #[test]
    fn empty_inputs() {
        let z = CsrMatrix::zeros(4, 4);
        assert_eq!(spadd(&dev(), &z, &z).0.nnz(), 0);
        assert_eq!(spgemm(&dev(), &z, &z).0.nnz(), 0);
        assert_eq!(spmv(&dev(), &z, &[0.0; 4]).0, vec![0.0; 4]);
    }
}
