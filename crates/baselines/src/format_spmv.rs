//! Format-specialized SpMV kernels (Bell & Garland, the paper's cited
//! SpMV tradition).
//!
//! These kernels demonstrate the other side of the paper's argument: a
//! format tuned to a matrix class beats general CSR there (ELL on uniform
//! rows, DIA on stencils) but pays padding, conversion, and inapplicability
//! everywhere else. The ablation bench `ablation_spmv_formats` quantifies
//! the comparison against the format-agnostic merge kernel.

use mps_simt::grid::{launch_map_named, LaunchConfig, LaunchStats};
use mps_simt::Device;
use mps_sparse::formats::{DiaMatrix, EllMatrix, HybMatrix, ELL_PAD};

/// ELL SpMV: one thread per row marching down the padded columns. Loads of
/// the column-major-equivalent padded table are fully coalesced; padding
/// slots still burn bandwidth and lanes.
pub fn spmv_ell(device: &Device, m: &EllMatrix, x: &[f64]) -> (Vec<f64>, LaunchStats) {
    assert_eq!(x.len(), m.num_cols, "x length must equal num_cols");
    let threads = 128;
    let rows = m.num_rows;
    let num_ctas = rows.div_ceil(threads).max(1);
    let (tiles, stats) = launch_map_named(
        device,
        "ell_spmv",
        LaunchConfig::new(num_ctas, threads),
        |cta| {
            let row_lo = cta.cta_id * threads;
            let row_hi = (row_lo + threads).min(rows);
            let count = row_hi - row_lo;
            // Every padded slot is touched: width steps of coalesced loads.
            cta.read_coalesced(count * m.width, 12);
            cta.alu(2 * (count * m.width) as u64);
            let mut y = Vec::with_capacity(count);
            for r in row_lo..row_hi {
                let mut acc = 0.0;
                let mut gathered = Vec::new();
                for i in 0..m.width {
                    let c = m.col_idx[r * m.width + i];
                    if c != ELL_PAD {
                        gathered.push(c as usize);
                        acc += m.values[r * m.width + i] * x[c as usize];
                    }
                }
                cta.gather(gathered, 8);
                y.push(acc);
            }
            cta.write_coalesced(count, 8);
            y
        },
    );
    let mut y = Vec::with_capacity(rows);
    for t in tiles {
        y.extend(t);
    }
    (y, stats)
}

/// DIA SpMV: one thread per row, one pass per stored diagonal. The x
/// accesses are unit-stride shifted windows — the best memory behaviour
/// any SpMV can have, available only to stencil-structured matrices.
pub fn spmv_dia(device: &Device, m: &DiaMatrix, x: &[f64]) -> (Vec<f64>, LaunchStats) {
    assert_eq!(x.len(), m.num_cols, "x length must equal num_cols");
    let threads = 128;
    let rows = m.num_rows;
    let num_ctas = rows.div_ceil(threads).max(1);
    let ndiag = m.offsets.len();
    let (tiles, stats) = launch_map_named(
        device,
        "dia_spmv",
        LaunchConfig::new(num_ctas, threads),
        |cta| {
            let row_lo = cta.cta_id * threads;
            let row_hi = (row_lo + threads).min(rows);
            let count = row_hi - row_lo;
            // Diagonal values stream; x windows are contiguous per diagonal.
            cta.read_coalesced(count * ndiag, 8);
            cta.read_coalesced(count * ndiag, 8);
            cta.alu(2 * (count * ndiag) as u64);
            let mut y = vec![0.0; count];
            for (d, &off) in m.offsets.iter().enumerate() {
                for r in row_lo..row_hi {
                    let c = r as i64 + off;
                    if c >= 0 && (c as usize) < m.num_cols {
                        y[r - row_lo] += m.values[d * rows + r] * x[c as usize];
                    }
                }
            }
            cta.write_coalesced(count, 8);
            y
        },
    );
    let mut y = Vec::with_capacity(rows);
    for t in tiles {
        y.extend(t);
    }
    (y, stats)
}

/// HYB SpMV: the ELL part plus a flat COO pass over the tail, combined on
/// the host (on hardware the COO kernel accumulates with atomics; the cost
/// model charges it as a scattered read-modify-write).
pub fn spmv_hyb(device: &Device, m: &HybMatrix, x: &[f64]) -> (Vec<f64>, LaunchStats) {
    let (mut y, mut stats) = spmv_ell(device, &m.ell, x);
    let tail = m.coo_vals.len();
    if tail > 0 {
        let nv = 4096;
        let num_ctas = tail.div_ceil(nv).max(1);
        let (parts, coo_stats) = launch_map_named(
            device,
            "hyb_coo_tail",
            LaunchConfig::new(num_ctas, 128),
            |cta| {
                let lo = cta.cta_id * nv;
                let hi = (lo + nv).min(tail);
                cta.read_coalesced(hi - lo, 16);
                cta.gather(m.coo_cols[lo..hi].iter().map(|&c| c as usize), 8);
                // Atomic accumulation into y.
                cta.scatter(m.coo_rows[lo..hi].iter().map(|&r| r as usize), 8);
                cta.alu(2 * (hi - lo) as u64);
                (lo..hi)
                    .map(|i| {
                        (
                            m.coo_rows[i] as usize,
                            m.coo_vals[i] * x[m.coo_cols[i] as usize],
                        )
                    })
                    .collect::<Vec<_>>()
            },
        );
        for part in parts {
            for (r, v) in part {
                y[r] += v;
            }
        }
        stats.add(&coo_stats);
    }
    (y, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::gen;
    use mps_sparse::ops::spmv_ref;

    fn dev() -> Device {
        Device::titan()
    }

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn ell_spmv_matches_reference() {
        let m = gen::fixed_per_row(300, 300, 12, 1);
        let x: Vec<f64> = (0..300).map(|i| 1.0 + (i % 5) as f64).collect();
        let ell = EllMatrix::from_csr(&m);
        let (y, _) = spmv_ell(&dev(), &ell, &x);
        assert!(close(&y, &spmv_ref(&m, &x)));
    }

    #[test]
    fn dia_spmv_matches_reference_on_stencil() {
        let m = gen::stencil_5pt(20, 20);
        let x: Vec<f64> = (0..m.num_cols).map(|i| (i % 7) as f64 - 3.0).collect();
        let dia = DiaMatrix::from_csr(&m, 8).expect("stencil");
        let (y, _) = spmv_dia(&dev(), &dia, &x);
        assert!(close(&y, &spmv_ref(&m, &x)));
    }

    #[test]
    fn hyb_spmv_matches_reference_on_power_law() {
        let m = gen::power_law(400, 400, 1, 1.5, 300, 2);
        let x: Vec<f64> = (0..400).map(|i| 0.5 + (i % 3) as f64).collect();
        let hyb = HybMatrix::from_csr(&m, HybMatrix::heuristic_width(&m));
        let (y, _) = spmv_hyb(&dev(), &hyb, &x);
        assert!(close(&y, &spmv_ref(&m, &x)));
    }

    #[test]
    fn ell_wastes_time_on_skewed_matrices() {
        // Same matrix through ELL (huge padding) vs HYB (tail split): the
        // hybrid must be substantially faster — Bell & Garland's insight.
        // The skew is constructed explicitly (a handful of enormous rows
        // over a short tail) so the contrast doesn't hinge on one RNG
        // stream happening to sample an extreme power-law draw.
        let mut coo = mps_sparse::CooMatrix::new(3000, 3000);
        for r in 0..3000u32 {
            let len = if r % 500 == 0 { 2000usize } else { 2 };
            for k in 0..len {
                coo.push(r, ((r as usize * 17 + k * 31) % 3000) as u32, 1.0);
            }
        }
        let m = coo.to_csr();
        let x = vec![1.0; 3000];
        let ell = EllMatrix::from_csr(&m);
        let hyb = HybMatrix::from_csr(&m, HybMatrix::heuristic_width(&m));
        let (_, se) = spmv_ell(&dev(), &ell, &x);
        let (_, sh) = spmv_hyb(&dev(), &hyb, &x);
        assert!(
            se.sim_ms > 1.5 * sh.sim_ms,
            "ELL {} should trail HYB {}",
            se.sim_ms,
            sh.sim_ms
        );
    }

    #[test]
    fn dia_beats_general_kernels_on_its_home_turf() {
        let m = gen::stencil_5pt(120, 120);
        let x = vec![1.0; m.num_cols];
        let dia = DiaMatrix::from_csr(&m, 8).expect("stencil");
        let (_, sd) = spmv_dia(&dev(), &dia, &x);
        let (_, sc) = crate::cusp::spmv_vector(&dev(), &m, &x);
        assert!(
            sd.sim_ms < sc.sim_ms,
            "DIA {} vs vector CSR {}",
            sd.sim_ms,
            sc.sim_ms
        );
    }

    #[test]
    fn empty_tail_hyb_equals_ell() {
        let m = gen::fixed_per_row(100, 100, 6, 4);
        let x = vec![1.0; 100];
        let hyb = HybMatrix::from_csr(&m, 6);
        assert!(hyb.coo_vals.is_empty());
        let (yh, _) = spmv_hyb(&dev(), &hyb, &x);
        let (ye, _) = spmv_ell(&dev(), &hyb.ell, &x);
        assert_eq!(yh, ye);
    }
}
