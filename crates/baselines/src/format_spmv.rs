//! Format-specialized SpMV kernels (Bell & Garland, the paper's cited
//! SpMV tradition).
//!
//! These kernels demonstrate the other side of the paper's argument: a
//! format tuned to a matrix class beats general CSR there (ELL on uniform
//! rows, DIA on stencils) but pays padding, conversion, and inapplicability
//! everywhere else. The ablation bench `ablation_spmv_formats` quantifies
//! the comparison against the format-agnostic merge kernel.

use mps_simt::grid::{launch_map_named, launch_map_phased, LaunchConfig, LaunchStats};
use mps_simt::{Device, Phase};
use mps_sparse::cmrs::CmrsMatrix;
use mps_sparse::formats::{DiaMatrix, EllMatrix, HybMatrix, ELL_PAD};
use mps_sparse::sell::{SellCSigmaMatrix, SELL_PAD};
use mps_sparse::DenseBlock;

/// ELL SpMV: one thread per row marching down the padded columns. Loads of
/// the column-major-equivalent padded table are fully coalesced; padding
/// slots still burn bandwidth and lanes.
pub fn spmv_ell(device: &Device, m: &EllMatrix, x: &[f64]) -> (Vec<f64>, LaunchStats) {
    assert_eq!(x.len(), m.num_cols, "x length must equal num_cols");
    let threads = 128;
    let rows = m.num_rows;
    let num_ctas = rows.div_ceil(threads).max(1);
    let (tiles, stats) = launch_map_named(
        device,
        "ell_spmv",
        LaunchConfig::new(num_ctas, threads),
        |cta| {
            let row_lo = cta.cta_id * threads;
            let row_hi = (row_lo + threads).min(rows);
            let count = row_hi - row_lo;
            // Every padded slot is touched: width steps of coalesced loads.
            cta.read_coalesced(count * m.width, 12);
            cta.alu(2 * (count * m.width) as u64);
            let mut y = Vec::with_capacity(count);
            for r in row_lo..row_hi {
                let mut acc = 0.0;
                let mut gathered = Vec::new();
                for i in 0..m.width {
                    let c = m.col_idx[r * m.width + i];
                    if c != ELL_PAD {
                        gathered.push(c as usize);
                        acc += m.values[r * m.width + i] * x[c as usize];
                    }
                }
                cta.gather(gathered, 8);
                y.push(acc);
            }
            cta.write_coalesced(count, 8);
            y
        },
    );
    let mut y = Vec::with_capacity(rows);
    for t in tiles {
        y.extend(t);
    }
    (y, stats)
}

/// DIA SpMV: one thread per row, one pass per stored diagonal. The x
/// accesses are unit-stride shifted windows — the best memory behaviour
/// any SpMV can have, available only to stencil-structured matrices.
pub fn spmv_dia(device: &Device, m: &DiaMatrix, x: &[f64]) -> (Vec<f64>, LaunchStats) {
    assert_eq!(x.len(), m.num_cols, "x length must equal num_cols");
    let threads = 128;
    let rows = m.num_rows;
    let num_ctas = rows.div_ceil(threads).max(1);
    let ndiag = m.offsets.len();
    let (tiles, stats) = launch_map_named(
        device,
        "dia_spmv",
        LaunchConfig::new(num_ctas, threads),
        |cta| {
            let row_lo = cta.cta_id * threads;
            let row_hi = (row_lo + threads).min(rows);
            let count = row_hi - row_lo;
            // Diagonal values stream; x windows are contiguous per diagonal.
            cta.read_coalesced(count * ndiag, 8);
            cta.read_coalesced(count * ndiag, 8);
            cta.alu(2 * (count * ndiag) as u64);
            let mut y = vec![0.0; count];
            for (d, &off) in m.offsets.iter().enumerate() {
                for r in row_lo..row_hi {
                    let c = r as i64 + off;
                    if c >= 0 && (c as usize) < m.num_cols {
                        y[r - row_lo] += m.values[d * rows + r] * x[c as usize];
                    }
                }
            }
            cta.write_coalesced(count, 8);
            y
        },
    );
    let mut y = Vec::with_capacity(rows);
    for t in tiles {
        y.extend(t);
    }
    (y, stats)
}

/// HYB SpMV: the ELL part plus a flat COO pass over the tail, combined on
/// the host (on hardware the COO kernel accumulates with atomics; the cost
/// model charges it as a scattered read-modify-write).
pub fn spmv_hyb(device: &Device, m: &HybMatrix, x: &[f64]) -> (Vec<f64>, LaunchStats) {
    let (mut y, mut stats) = spmv_ell(device, &m.ell, x);
    let tail = m.coo_vals.len();
    if tail > 0 {
        let nv = 4096;
        let num_ctas = tail.div_ceil(nv).max(1);
        let (parts, coo_stats) = launch_map_named(
            device,
            "hyb_coo_tail",
            LaunchConfig::new(num_ctas, 128),
            |cta| {
                let lo = cta.cta_id * nv;
                let hi = (lo + nv).min(tail);
                cta.read_coalesced(hi - lo, 16);
                cta.gather(m.coo_cols[lo..hi].iter().map(|&c| c as usize), 8);
                // Atomic accumulation into y.
                cta.scatter(m.coo_rows[lo..hi].iter().map(|&r| r as usize), 8);
                cta.alu(2 * (hi - lo) as u64);
                (lo..hi)
                    .map(|i| {
                        (
                            m.coo_rows[i] as usize,
                            m.coo_vals[i] * x[m.coo_cols[i] as usize],
                        )
                    })
                    .collect::<Vec<_>>()
            },
        );
        for part in parts {
            for (r, v) in part {
                y[r] += v;
            }
        }
        stats.add(&coo_stats);
    }
    (y, stats)
}

/// Threads per CTA shared by the strip/slice format kernels.
pub const FORMAT_THREADS: usize = 128;

/// CMRS SpMV: each CTA owns a run of strips; threads stream the strip's
/// interleaved (tag, col, val) triples — fully coalesced, zero padding —
/// and accumulate into per-row shared-memory slots routed by the tag.
/// Rows accumulate in their CSR entry order, so results are bitwise equal
/// to a sequential row-wise dot.
pub fn spmv_cmrs(device: &Device, m: &CmrsMatrix, x: &[f64]) -> (Vec<f64>, LaunchStats) {
    assert_eq!(x.len(), m.num_cols, "x length must equal num_cols");
    let strips_per_cta = (FORMAT_THREADS / m.strip_height).max(1);
    let num_ctas = m.num_strips().div_ceil(strips_per_cta).max(1);
    let (tiles, stats) = launch_map_phased(
        device,
        "cmrs_spmv",
        Phase::CmrsStrip,
        LaunchConfig::new(num_ctas, FORMAT_THREADS),
        |cta| {
            let s_lo = cta.cta_id * strips_per_cta;
            let s_hi = (s_lo + strips_per_cta).min(m.num_strips());
            let row_lo = s_lo * m.strip_height;
            let row_hi = (s_hi * m.strip_height).min(m.num_rows);
            // -0.0 is `Iterator::sum`'s empty identity: rows with no
            // entries come out bitwise equal to the sequential reference.
            let mut y = vec![-0.0; row_hi - row_lo];
            for s in s_lo..s_hi {
                let (lo, hi) = (m.strip_ptr[s], m.strip_ptr[s + 1]);
                let entries = hi - lo;
                // Tag stream (2 B) + column stream (4 B) + value stream
                // (8 B): CMRS's extra traffic over CSR is exactly the tags.
                cta.read_coalesced(entries, 2);
                cta.read_coalesced(entries, 4);
                cta.read_coalesced(entries, 8);
                cta.gather(m.col_idx[lo..hi].iter().map(|&c| c as usize), 8);
                // Read-modify-write of the shared accumulator per entry.
                cta.shmem(2 * entries as u64);
                cta.alu(2 * entries as u64);
                let base = s * m.strip_height - row_lo;
                for k in lo..hi {
                    y[base + m.row_in_strip[k] as usize] += m.values[k] * x[m.col_idx[k] as usize];
                }
            }
            cta.write_coalesced(row_hi - row_lo, 8);
            y
        },
    );
    let mut y = Vec::with_capacity(m.num_rows);
    for t in tiles {
        y.extend(t);
    }
    (y, stats)
}

/// SELL-C-σ SpMV: one lane per permuted row, each slice marching down its
/// own width at a uniform stride. Loads are perfectly coalesced (padding
/// included — the slots burn bandwidth); the store scatters through the
/// σ-window permutation back to original row order. No shared memory and
/// no barriers. Each lane accumulates its row in CSR entry order, so
/// results are bitwise equal to a sequential row-wise dot.
pub fn spmv_sell(device: &Device, m: &SellCSigmaMatrix, x: &[f64]) -> (Vec<f64>, LaunchStats) {
    assert_eq!(x.len(), m.num_cols, "x length must equal num_cols");
    let slices_per_cta = (FORMAT_THREADS / m.chunk).max(1);
    let num_ctas = m.num_slices().div_ceil(slices_per_cta).max(1);
    let (tiles, stats) = launch_map_phased(
        device,
        "sell_spmv",
        Phase::SellSlice,
        LaunchConfig::new(num_ctas, FORMAT_THREADS),
        |cta| {
            let s_lo = cta.cta_id * slices_per_cta;
            let s_hi = (s_lo + slices_per_cta).min(m.num_slices());
            let mut out = Vec::with_capacity((s_hi - s_lo) * m.chunk);
            for s in s_lo..s_hi {
                let lo = m.slice_ptr[s];
                let slots = m.slice_ptr[s + 1] - lo;
                let w = slots / m.chunk;
                // Every slot streams, pads included: 4 B column + 8 B value.
                cta.read_coalesced(slots, 12);
                cta.alu(2 * slots as u64);
                cta.gather(
                    m.col_idx[lo..lo + slots]
                        .iter()
                        .filter(|&&c| c != SELL_PAD)
                        .map(|&c| c as usize),
                    8,
                );
                let lanes = (m.num_rows - s * m.chunk).min(m.chunk);
                for lane in 0..lanes {
                    let mut acc = -0.0;
                    for j in 0..w {
                        let slot = lo + j * m.chunk + lane;
                        let c = m.col_idx[slot];
                        if c == SELL_PAD {
                            break;
                        }
                        acc += m.values[slot] * x[c as usize];
                    }
                    out.push((m.perm[s * m.chunk + lane] as usize, acc));
                }
                // Permuted store back to original row order.
                cta.scatter(out[out.len() - lanes..].iter().map(|&(r, _)| r), 8);
            }
            out
        },
    );
    let mut y = vec![0.0; m.num_rows];
    for t in tiles {
        for (r, v) in t {
            y[r] = v;
        }
    }
    (y, stats)
}

/// SELL-C-σ SpMM: the SpMV lane walk widened to `k` dense columns — each
/// touched entry gathers a length-`k` row of B and the store scatters
/// length-`k` rows of Y through the permutation.
pub fn spmm_sell(
    device: &Device,
    m: &SellCSigmaMatrix,
    b: &DenseBlock,
) -> (DenseBlock, LaunchStats) {
    assert_eq!(b.rows, m.num_cols, "B rows must equal num_cols");
    let k = b.cols;
    let slices_per_cta = (FORMAT_THREADS / m.chunk).max(1);
    let num_ctas = m.num_slices().div_ceil(slices_per_cta).max(1);
    let (tiles, stats) = launch_map_phased(
        device,
        "sell_spmm",
        Phase::SellSlice,
        LaunchConfig::new(num_ctas, FORMAT_THREADS),
        |cta| {
            let s_lo = cta.cta_id * slices_per_cta;
            let s_hi = (s_lo + slices_per_cta).min(m.num_slices());
            let mut out = Vec::with_capacity((s_hi - s_lo) * m.chunk);
            for s in s_lo..s_hi {
                let lo = m.slice_ptr[s];
                let slots = m.slice_ptr[s + 1] - lo;
                let w = slots / m.chunk;
                cta.read_coalesced(slots, 12);
                cta.alu(2 * (slots * k) as u64);
                cta.gather_wide(
                    m.col_idx[lo..lo + slots]
                        .iter()
                        .filter(|&&c| c != SELL_PAD)
                        .map(|&c| c as usize),
                    8,
                    k,
                );
                let lanes = (m.num_rows - s * m.chunk).min(m.chunk);
                for lane in 0..lanes {
                    let mut acc = vec![-0.0; k];
                    for j in 0..w {
                        let slot = lo + j * m.chunk + lane;
                        let c = m.col_idx[slot];
                        if c == SELL_PAD {
                            break;
                        }
                        let v = m.values[slot];
                        for (a, &bv) in acc.iter_mut().zip(b.row(c as usize)) {
                            *a += v * bv;
                        }
                    }
                    out.push((m.perm[s * m.chunk + lane] as usize, acc));
                }
                cta.scatter_wide(out[out.len() - lanes..].iter().map(|&(r, _)| r), 8, k);
            }
            out
        },
    );
    let mut y = DenseBlock::zeros(m.num_rows, k);
    for t in tiles {
        for (r, vals) in t {
            y.row_mut(r).copy_from_slice(&vals);
        }
    }
    (y, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::gen;
    use mps_sparse::ops::spmv_ref;

    fn dev() -> Device {
        Device::titan()
    }

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn ell_spmv_matches_reference() {
        let m = gen::fixed_per_row(300, 300, 12, 1);
        let x: Vec<f64> = (0..300).map(|i| 1.0 + (i % 5) as f64).collect();
        let ell = EllMatrix::from_csr(&m);
        let (y, _) = spmv_ell(&dev(), &ell, &x);
        assert!(close(&y, &spmv_ref(&m, &x)));
    }

    #[test]
    fn dia_spmv_matches_reference_on_stencil() {
        let m = gen::stencil_5pt(20, 20);
        let x: Vec<f64> = (0..m.num_cols).map(|i| (i % 7) as f64 - 3.0).collect();
        let dia = DiaMatrix::from_csr(&m, 8).expect("stencil");
        let (y, _) = spmv_dia(&dev(), &dia, &x);
        assert!(close(&y, &spmv_ref(&m, &x)));
    }

    #[test]
    fn hyb_spmv_matches_reference_on_power_law() {
        let m = gen::power_law(400, 400, 1, 1.5, 300, 2);
        let x: Vec<f64> = (0..400).map(|i| 0.5 + (i % 3) as f64).collect();
        let hyb = HybMatrix::from_csr(&m, HybMatrix::heuristic_width(&m));
        let (y, _) = spmv_hyb(&dev(), &hyb, &x);
        assert!(close(&y, &spmv_ref(&m, &x)));
    }

    #[test]
    fn ell_wastes_time_on_skewed_matrices() {
        // Same matrix through ELL (huge padding) vs HYB (tail split): the
        // hybrid must be substantially faster — Bell & Garland's insight.
        // The skew is constructed explicitly (a handful of enormous rows
        // over a short tail) so the contrast doesn't hinge on one RNG
        // stream happening to sample an extreme power-law draw.
        let mut coo = mps_sparse::CooMatrix::new(3000, 3000);
        for r in 0..3000u32 {
            let len = if r % 500 == 0 { 2000usize } else { 2 };
            for k in 0..len {
                coo.push(r, ((r as usize * 17 + k * 31) % 3000) as u32, 1.0);
            }
        }
        let m = coo.to_csr();
        let x = vec![1.0; 3000];
        let ell = EllMatrix::from_csr(&m);
        let hyb = HybMatrix::from_csr(&m, HybMatrix::heuristic_width(&m));
        let (_, se) = spmv_ell(&dev(), &ell, &x);
        let (_, sh) = spmv_hyb(&dev(), &hyb, &x);
        assert!(
            se.sim_ms > 1.5 * sh.sim_ms,
            "ELL {} should trail HYB {}",
            se.sim_ms,
            sh.sim_ms
        );
    }

    #[test]
    fn dia_beats_general_kernels_on_its_home_turf() {
        let m = gen::stencil_5pt(120, 120);
        let x = vec![1.0; m.num_cols];
        let dia = DiaMatrix::from_csr(&m, 8).expect("stencil");
        let (_, sd) = spmv_dia(&dev(), &dia, &x);
        let (_, sc) = crate::cusp::spmv_vector(&dev(), &m, &x);
        assert!(
            sd.sim_ms < sc.sim_ms,
            "DIA {} vs vector CSR {}",
            sd.sim_ms,
            sc.sim_ms
        );
    }

    #[test]
    fn cmrs_spmv_is_bitwise_equal_to_rowwise_reference() {
        // Strip interleaving preserves each row's entry order, so the
        // accumulation is the same f64 sequence as the reference dot.
        for m in [
            gen::random_uniform(500, 500, 9.0, 4.0, 3),
            gen::power_law(600, 600, 1, 1.5, 400, 8),
            gen::stencil_5pt(25, 17),
        ] {
            let x: Vec<f64> = (0..m.num_cols).map(|i| 0.25 + (i % 11) as f64).collect();
            let cmrs = CmrsMatrix::from_csr(&m);
            let (y, _) = spmv_cmrs(&dev(), &cmrs, &x);
            assert_eq!(y, spmv_ref(&m, &x));
        }
    }

    #[test]
    fn sell_spmv_is_bitwise_equal_to_rowwise_reference() {
        for m in [
            gen::random_uniform(500, 500, 9.0, 4.0, 3),
            gen::power_law(600, 600, 1, 1.5, 400, 8),
            gen::banded(300, 6.0, 2.0, 40, 12),
        ] {
            let x: Vec<f64> = (0..m.num_cols).map(|i| 0.25 + (i % 11) as f64).collect();
            let sell = SellCSigmaMatrix::from_csr(&m);
            let (y, _) = spmv_sell(&dev(), &sell, &x);
            assert_eq!(y, spmv_ref(&m, &x));
        }
    }

    #[test]
    fn sell_spmm_matches_dense_reference() {
        let m = gen::random_uniform(300, 280, 7.0, 3.0, 6);
        let b = DenseBlock::from_fn(280, 3, |r, c| ((r * 7 + c * 13) % 10) as f64 - 4.5);
        let sell = SellCSigmaMatrix::from_csr(&m);
        let (y, _) = spmm_sell(&dev(), &sell, &b);
        let want = mps_sparse::dense::spmm_ref(&m, &b);
        assert_eq!(y.rows, want.rows);
        assert_eq!(y.cols, want.cols);
        for r in 0..y.rows {
            for c in 0..y.cols {
                let (a, b_) = (y.get(r, c), want.get(r, c));
                assert!(
                    (a - b_).abs() <= 1e-9 * (1.0 + a.abs().max(b_.abs())),
                    "({r},{c}): {a} vs {b_}"
                );
            }
        }
    }

    #[test]
    fn sell_beats_cmrs_on_uniform_rows_and_loses_on_skew() {
        // Uniform rows: SELL pads nothing, runs barrier-free, and streams
        // 12 B per slot vs CMRS's 14 B per entry — it must win. One giant
        // row per σ window: SELL pads every lane of the dense slices while
        // CMRS stores exactly nnz — the ordering must flip.
        let uniform = gen::fixed_per_row(4096, 4096, 16, 7);
        let x = vec![1.0; 4096];
        let (_, s_sell) = spmv_sell(&dev(), &SellCSigmaMatrix::from_csr(&uniform), &x);
        let (_, s_cmrs) = spmv_cmrs(&dev(), &CmrsMatrix::from_csr(&uniform), &x);
        assert!(
            s_sell.sim_ms < s_cmrs.sim_ms,
            "uniform: SELL {} should beat CMRS {}",
            s_sell.sim_ms,
            s_cmrs.sim_ms
        );

        let mut coo = mps_sparse::CooMatrix::new(4096, 4096);
        for r in 0..4096u32 {
            let len = if r % 256 == 0 { 3000usize } else { 2 };
            for k in 0..len {
                coo.push(r, ((r as usize * 19 + k * 29) % 4096) as u32, 1.0);
            }
        }
        let skewed = coo.to_csr();
        let (_, s_sell) = spmv_sell(&dev(), &SellCSigmaMatrix::from_csr(&skewed), &x);
        let (_, s_cmrs) = spmv_cmrs(&dev(), &CmrsMatrix::from_csr(&skewed), &x);
        assert!(
            s_cmrs.sim_ms < s_sell.sim_ms,
            "skewed: CMRS {} should beat SELL {}",
            s_cmrs.sim_ms,
            s_sell.sim_ms
        );
    }

    #[test]
    fn empty_tail_hyb_equals_ell() {
        let m = gen::fixed_per_row(100, 100, 6, 4);
        let x = vec![1.0; 100];
        let hyb = HybMatrix::from_csr(&m, 6);
        assert!(hyb.coo_vals.is_empty());
        let (yh, _) = spmv_hyb(&dev(), &hyb, &x);
        let (ye, _) = spmv_ell(&dev(), &hyb.ell, &x);
        assert_eq!(yh, ye);
    }
}
