//! Row-structured SpMM baseline: one warp per row of `A`, all `k` output
//! columns produced by that warp before it moves on.
//!
//! This is the natural extension of the vectorized (warp-per-row) CSR SpMV
//! to a dense multi-vector operand, and the comparator the merge-path SpMM
//! is measured against. It inherits both pathologies of its SpMV parent —
//! warps serialize on long rows, short rows waste lanes — and adds a third:
//! the operand block's rows are gathered entry by entry (one narrow gather
//! per nonzero per column), so it never benefits from the row-major layout
//! the way the column-tiled kernel's wide loads do.

use mps_simt::grid::{launch_map_named, LaunchConfig, LaunchStats};
use mps_simt::Device;
use mps_sparse::{CsrMatrix, DenseBlock};

/// Warp-per-row CSR SpMM: `Y = A·X` with one warp cooperating on each row
/// of `A`, iterating over the `k` operand columns in an inner loop.
pub fn spmm_row_warp(device: &Device, a: &CsrMatrix, x: &DenseBlock) -> (DenseBlock, LaunchStats) {
    assert_eq!(x.rows, a.num_cols, "operand block must have num_cols rows");
    let k = x.cols;
    let threads = 128;
    let warp = device.props.warp_size;
    let rows_per_cta = threads / warp;
    let rows = a.num_rows;
    let num_ctas = rows.div_ceil(rows_per_cta).max(1);
    let (tiles, stats) = launch_map_named(
        device,
        "row_warp_spmm",
        LaunchConfig::new(num_ctas, threads),
        |cta| {
            let row_lo = cta.cta_id * rows_per_cta;
            let row_hi = (row_lo + rows_per_cta).min(rows);
            let mut y = Vec::with_capacity((row_hi - row_lo) * k);
            for r in row_lo..row_hi {
                let len = a.row_len(r);
                // The row segment of A is re-read for every output column:
                // the warp holds no register tile across columns.
                for c in 0..k {
                    cta.read_coalesced(len, 12);
                    // Narrow gathers of X: lane addresses are k apart in
                    // the row-major block, so each pays its own transaction.
                    cta.gather(a.row_cols(r).iter().map(|&j| j as usize * k + c), 8);
                    let steps = len.div_ceil(warp).max(1) as u64;
                    cta.alu(steps * warp as u64 * 2);
                    // Warp-wide tree reduction of partial sums.
                    cta.alu((warp.ilog2() as u64) * warp as u64);
                    let mut acc = 0.0;
                    for (j, v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
                        acc += v * x.get(*j as usize, c);
                    }
                    y.push(acc);
                }
            }
            cta.write_coalesced((row_hi - row_lo) * k, 8);
            y
        },
    );
    let mut y = DenseBlock::zeros(rows, k);
    let mut flat = Vec::with_capacity(rows * k);
    for t in tiles {
        flat.extend(t);
    }
    y.data = flat;
    (y, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::dense::spmm_ref;
    use mps_sparse::gen;

    fn dev() -> Device {
        Device::titan()
    }

    #[test]
    fn row_warp_spmm_matches_reference() {
        for m in [
            gen::stencil_5pt(15, 15),
            gen::power_law(200, 200, 1, 1.5, 80, 5),
        ] {
            for k in [1usize, 4, 9] {
                let x = DenseBlock::from_fn(m.num_cols, k, |r, c| {
                    1.0 + ((r * 5 + c * 3) % 11) as f64 * 0.5
                });
                let (y, stats) = spmm_row_warp(&dev(), &m, &x);
                let expect = spmm_ref(&m, &x);
                assert_eq!((y.rows, y.cols), (expect.rows, expect.cols));
                for (a, b) in y.data.iter().zip(&expect.data) {
                    assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())));
                }
                assert!(stats.sim_ms > 0.0);
            }
        }
    }

    #[test]
    fn cost_scales_with_block_width() {
        let m = gen::random_uniform(400, 400, 8.0, 4.0, 7);
        let x1 = DenseBlock::from_fn(m.num_cols, 1, |r, _| r as f64);
        let x8 = DenseBlock::from_fn(m.num_cols, 8, |r, c| (r + c) as f64);
        let (_, s1) = spmm_row_warp(&dev(), &m, &x1);
        let (_, s8) = spmm_row_warp(&dev(), &m, &x8);
        // No column tiling: k columns cost roughly k single-vector passes.
        assert!(s8.sim_ms > 4.0 * s1.sim_ms);
    }

    #[test]
    fn empty_matrix_yields_zero_block() {
        let m = CsrMatrix::zeros(6, 6);
        let x = DenseBlock::from_fn(6, 3, |r, c| (r * 3 + c) as f64);
        let (y, _) = spmm_row_warp(&dev(), &m, &x);
        assert_eq!(y.data, vec![0.0; 18]);
    }
}
