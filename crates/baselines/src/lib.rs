//! # mps-baselines — comparator implementations
//!
//! The three comparators of the paper's evaluation:
//!
//! * [`cusp`] — the open-source package: scalar and vectorized CSR SpMV,
//!   global-sort COO SpAdd, and ESC (expansion / sorting / compression)
//!   SpGEMM, all on the virtual device;
//! * [`cusparse_like`] — a stand-in for the closed-source comparator:
//!   row-structured, segmentation-aware implementations (adaptive
//!   vectorized SpMV, row-merge SpAdd, hash-based row-wise SpGEMM). The
//!   paper treats cuSPARSE as an opaque row-wise package whose runtime does
//!   not track flat work; any well-built row-wise scheme reproduces that
//!   behaviour, which is what the figures compare against;
//! * [`cpu`] — sequential CSR kernels scored by a deterministic analytic
//!   cost model of the paper's Core i7-3820 host (the speedup denominator
//!   of Figures 7 and 9);
//! * [`format_spmv`] — the format-specialized SpMV tradition the paper
//!   argues against (Bell-Garland ELL/DIA/HYB kernels), used by the
//!   format ablation bench;
//! * [`spmm`] — warp-per-row CSR SpMM, the row-structured comparator for
//!   the column-tiled merge-path multi-vector kernel.

pub mod cpu;
pub mod cusp;
pub mod cusparse_like;
pub mod format_spmv;
pub mod spmm;
