//! Sequential CPU baseline with a deterministic analytic cost model.
//!
//! Figures 7 and 9 report speedup versus "the sequential implementation
//! using CSR format on the CPU" of the paper's i7-3820 host (Table I).
//! Wall-clock timing of the host running this repository would make every
//! figure depend on the build machine, so the baseline is scored by an
//! analytic model instead: streamed bytes at sustained DRAM bandwidth,
//! arithmetic at a fixed CPI, and irregular accesses at an average
//! cache-miss latency. The *shape* of the speedup bars — which is what the
//! reproduction targets — depends only on these ratios.

use mps_sparse::ops;
use mps_sparse::CsrMatrix;

/// Cost model of a single Sandy Bridge-class core (i7-3820, 3.6 GHz).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    pub clock_ghz: f64,
    /// Cycles per simple arithmetic/compare/move operation.
    pub cycles_per_op: f64,
    /// Average cycles per irregular (cache-missing) access.
    pub cycles_per_random_access: f64,
    /// Sustained streaming bandwidth for a single core, GB/s.
    pub stream_gbps: f64,
}

impl CpuModel {
    /// The paper's host CPU (Table I).
    pub fn i7_3820() -> Self {
        CpuModel {
            clock_ghz: 3.6,
            cycles_per_op: 1.0,
            // Sparse-kernel working sets (Gustavson workspace, x vector)
            // mostly hit L2; the average irregular access is far cheaper
            // than a DRAM miss.
            cycles_per_random_access: 8.0,
            stream_gbps: 12.0,
        }
    }

    /// Time in milliseconds for a kernel with the given op/traffic counts.
    pub fn time_ms(&self, ops: u64, random_accesses: u64, streamed_bytes: u64) -> f64 {
        let compute_s = (ops as f64 * self.cycles_per_op
            + random_accesses as f64 * self.cycles_per_random_access)
            / (self.clock_ghz * 1e9);
        let memory_s = streamed_bytes as f64 / (self.stream_gbps * 1e9);
        (compute_s + memory_s) * 1e3
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        Self::i7_3820()
    }
}

/// Sequential SpMV with its modeled time.
pub fn spmv(model: &CpuModel, a: &CsrMatrix, x: &[f64]) -> (Vec<f64>, f64) {
    let y = ops::spmv_ref(a, x);
    let nnz = a.nnz() as u64;
    // 2 flops per nonzero; each nonzero gathers x irregularly; CSR arrays
    // and y stream.
    let ms = model.time_ms(2 * nnz, nnz, nnz * 12 + (a.num_rows as u64) * 16);
    (y, ms)
}

/// Sequential SpAdd with its modeled time.
pub fn spadd(model: &CpuModel, a: &CsrMatrix, b: &CsrMatrix) -> (CsrMatrix, f64) {
    let c = ops::spadd_ref(a, b);
    let work = (a.nnz() + b.nnz()) as u64;
    // Two-pointer merge: compare + move per input entry; all streaming.
    let ms = model.time_ms(3 * work, 0, work * 12 + c.nnz() as u64 * 12);
    (c, ms)
}

/// Sequential Gustavson SpGEMM with its modeled time.
pub fn spgemm(model: &CpuModel, a: &CsrMatrix, b: &CsrMatrix) -> (CsrMatrix, f64) {
    let c = ops::spgemm_ref(a, b);
    let products = ops::spgemm_products(a, b);
    // Each product: multiply + accumulate into the O(n) dense workspace
    // (irregular); sort of each output row adds log-factor ops.
    let out = c.nnz() as u64;
    let sort_ops: u64 = (0..c.num_rows)
        .map(|r| {
            let len = c.row_len(r) as u64;
            len * (64 - len.max(1).leading_zeros()) as u64
        })
        .sum();
    let ms = model.time_ms(
        2 * products + sort_ops,
        products,
        a.nnz() as u64 * 12 + products * 12 + out * 12,
    );
    (c, ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::gen;

    #[test]
    fn model_times_are_positive_and_monotone_in_work() {
        let m = CpuModel::default();
        assert!(m.time_ms(1000, 10, 1000) > 0.0);
        assert!(m.time_ms(2000, 10, 1000) > m.time_ms(1000, 10, 1000));
        assert!(m.time_ms(1000, 20, 1000) > m.time_ms(1000, 10, 1000));
        assert!(m.time_ms(1000, 10, 2000) > m.time_ms(1000, 10, 1000));
    }

    #[test]
    fn zero_work_is_free() {
        assert_eq!(CpuModel::default().time_ms(0, 0, 0), 0.0);
    }

    #[test]
    fn spmv_result_matches_reference_and_costs_scale() {
        let m = CpuModel::default();
        let small = gen::stencil_5pt(10, 10);
        let big = gen::stencil_5pt(50, 50);
        let (ys, ts) = spmv(&m, &small, &vec![1.0; small.num_cols]);
        let (yb, tb) = spmv(&m, &big, &vec![1.0; big.num_cols]);
        assert_eq!(
            ys,
            mps_sparse::ops::spmv_ref(&small, &vec![1.0; small.num_cols])
        );
        assert_eq!(yb.len(), big.num_rows);
        assert!(tb > ts);
    }

    #[test]
    fn spgemm_cost_tracks_products_not_just_nnz() {
        let m = CpuModel::default();
        // Same nnz, very different product counts.
        let diag = CsrMatrix::identity(1000);
        let dense_row = gen::lp_like(10, 1000, 100.0, 0.0, 1);
        let (_, t_diag) = spgemm(&m, &diag, &diag);
        let (_, t_lp) = spgemm(&m, &dense_row, &dense_row.transpose());
        assert!(t_lp > t_diag);
    }
}
