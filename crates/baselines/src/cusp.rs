//! Cusp-like open-source baselines.
//!
//! The open-source comparator of the paper's evaluation:
//!
//! * **scalar CSR SpMV** — one thread per row (the "obvious
//!   parallelization" of Section III-A, kept for the ablation benches);
//! * **vectorized CSR SpMV** — one warp per row, the implementation Figure
//!   5 labels "Cusp";
//! * **global-sort SpAdd** — concatenate COO entries and radix-sort the
//!   whole intermediate matrix (the `O(k·(|A|+|B|))` scheme of Section
//!   III-B), the implementation Figure 7 labels "Cusp";
//! * **ESC SpGEMM** — expansion, global sorting, compression (the paper's
//!   citation \[14\]), the implementation Figure 9 labels "Cusp".

use mps_merge::radix::sort_pairs;
use mps_simt::grid::{launch_map_named, LaunchConfig, LaunchStats};
use mps_simt::warp::warp_divergent_cost;
use mps_simt::Device;
use mps_sparse::{pack_key, unpack_key, CsrMatrix};

/// Scalar CSR SpMV: one thread per row. Warps serialize on their longest
/// row and gathers are uncoalesced — the imbalance pathology in miniature.
pub fn spmv_scalar(device: &Device, a: &CsrMatrix, x: &[f64]) -> (Vec<f64>, LaunchStats) {
    assert_eq!(x.len(), a.num_cols, "x length must equal num_cols");
    let threads = 128;
    let rows = a.num_rows;
    let num_ctas = rows.div_ceil(threads).max(1);
    let warp = device.props.warp_size;
    let (tiles, stats) = launch_map_named(
        device,
        "cusp_spmv_scalar",
        LaunchConfig::new(num_ctas, threads),
        |cta| {
            let row_lo = cta.cta_id * threads;
            let row_hi = (row_lo + threads).min(rows);
            let mut y = Vec::with_capacity(row_hi - row_lo);
            // Process warp by warp: each warp pays for its slowest lane, and
            // each SIMD step's 32 lane addresses are spread across 32 rows.
            for warp_lo in (row_lo..row_hi).step_by(warp) {
                let warp_hi = (warp_lo + warp).min(row_hi);
                let lane_rows = warp_lo..warp_hi;
                let lane_work: Vec<u64> =
                    lane_rows.clone().map(|r| 3 * a.row_len(r) as u64).collect();
                warp_divergent_cost(cta, &lane_work);
                let max_len = lane_rows.clone().map(|r| a.row_len(r)).max().unwrap_or(0);
                for step in 0..max_len {
                    // Lane addresses at this step: one per row, far apart.
                    cta.gather(
                        lane_rows.clone().filter_map(|r| {
                            let o = a.row_offsets[r] + step;
                            (o < a.row_offsets[r + 1]).then_some(o)
                        }),
                        12,
                    );
                    cta.gather(
                        lane_rows.clone().filter_map(|r| {
                            let o = a.row_offsets[r] + step;
                            (o < a.row_offsets[r + 1]).then(|| a.col_idx[o] as usize)
                        }),
                        8,
                    );
                }
                for r in lane_rows {
                    let mut acc = 0.0;
                    for (c, v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
                        acc += v * x[*c as usize];
                    }
                    y.push(acc);
                }
            }
            cta.write_coalesced(row_hi - row_lo, 8);
            y
        },
    );
    let mut y = Vec::with_capacity(rows);
    for t in tiles {
        y.extend(t);
    }
    (y, stats)
}

/// Vectorized CSR SpMV: one warp cooperates on each row (the Cusp kernel of
/// Figure 5). Row reads coalesce; short rows waste lanes; long rows still
/// stretch their CTA.
pub fn spmv_vector(device: &Device, a: &CsrMatrix, x: &[f64]) -> (Vec<f64>, LaunchStats) {
    assert_eq!(x.len(), a.num_cols, "x length must equal num_cols");
    let threads = 128;
    let warp = device.props.warp_size;
    let rows_per_cta = threads / warp;
    let rows = a.num_rows;
    let num_ctas = rows.div_ceil(rows_per_cta).max(1);
    let (tiles, stats) = launch_map_named(
        device,
        "cusp_spmv_vector",
        LaunchConfig::new(num_ctas, threads),
        |cta| {
            let row_lo = cta.cta_id * rows_per_cta;
            let row_hi = (row_lo + rows_per_cta).min(rows);
            let mut y = Vec::with_capacity(row_hi - row_lo);
            for r in row_lo..row_hi {
                let len = a.row_len(r);
                // Coalesced row segment reads; every SIMD step engages the full
                // warp even when fewer entries remain.
                cta.read_coalesced(len, 12);
                cta.gather(a.row_cols(r).iter().map(|&c| c as usize), 8);
                let steps = len.div_ceil(warp).max(1) as u64;
                cta.alu(steps * warp as u64 * 2);
                // Warp-wide tree reduction of partial sums.
                cta.alu((warp.ilog2() as u64) * warp as u64);
                let mut acc = 0.0;
                for (c, v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
                    acc += v * x[*c as usize];
                }
                y.push(acc);
            }
            cta.write_coalesced(row_hi - row_lo, 8);
            y
        },
    );
    let mut y = Vec::with_capacity(rows);
    for t in tiles {
        y.extend(t);
    }
    (y, stats)
}

/// Reduce-by-key over sorted COO keys: shared tail of the global-sort
/// pipelines.
fn reduce_sorted_coo(
    device: &Device,
    keys: &[u64],
    vals: &[f64],
    num_rows: usize,
    num_cols: usize,
) -> (CsrMatrix, LaunchStats) {
    let n = keys.len();
    let nv = 2048;
    let (parts, stats) = launch_map_named(
        device,
        "coo_reduce_by_key",
        LaunchConfig::new(n.div_ceil(nv).max(1), 128),
        |cta| {
            let lo = cta.cta_id * nv;
            let hi = (lo + nv).min(n);
            cta.read_coalesced(hi - lo, 16);
            cta.alu(3 * (hi - lo) as u64);
            let mut k = Vec::new();
            let mut v: Vec<f64> = Vec::new();
            for i in lo..hi {
                if k.last() == Some(&keys[i]) {
                    *v.last_mut().expect("parallel vectors") += vals[i];
                } else {
                    k.push(keys[i]);
                    v.push(vals[i]);
                }
            }
            cta.write_coalesced(k.len(), 16);
            (k, v)
        },
    );
    let mut out_k: Vec<u64> = Vec::new();
    let mut out_v: Vec<f64> = Vec::new();
    for (tk, tv) in parts {
        let mut start = 0;
        if let (Some(&last), Some(&first)) = (out_k.last(), tk.first()) {
            if last == first {
                *out_v.last_mut().expect("parallel vectors") += tv[0];
                start = 1;
            }
        }
        out_k.extend_from_slice(&tk[start..]);
        out_v.extend_from_slice(&tv[start..]);
    }
    let mut row_offsets = vec![0usize; num_rows + 1];
    let mut col_idx = Vec::with_capacity(out_k.len());
    for &k in &out_k {
        let (r, c) = unpack_key(k);
        row_offsets[r as usize + 1] += 1;
        col_idx.push(c);
    }
    for i in 0..num_rows {
        row_offsets[i + 1] += row_offsets[i];
    }
    (
        CsrMatrix {
            num_rows,
            num_cols,
            row_offsets,
            col_idx,
            values: out_v,
        },
        stats,
    )
}

fn expand_coo_keys(m: &CsrMatrix) -> Vec<u64> {
    let mut keys = Vec::with_capacity(m.nnz());
    for r in 0..m.num_rows {
        for &c in m.row_cols(r) {
            keys.push(pack_key(r as u32, c));
        }
    }
    keys
}

/// Global-sort SpAdd: concatenate, radix-sort the whole intermediate
/// matrix, reduce duplicates (the Cusp bars of Figure 7).
pub fn spadd_global_sort(
    device: &Device,
    a: &CsrMatrix,
    b: &CsrMatrix,
) -> (CsrMatrix, LaunchStats) {
    assert_eq!(
        (a.num_rows, a.num_cols),
        (b.num_rows, b.num_cols),
        "SpAdd operands must have identical shape"
    );
    let mut keys = expand_coo_keys(a);
    keys.extend(expand_coo_keys(b));
    let mut vals = a.values.clone();
    vals.extend_from_slice(&b.values);

    // Full-width sort of the packed tuples: the k-times-more-expensive
    // monolithic approach of Section III-B.
    let bits = 64
        - (pack_key(
            a.num_rows.saturating_sub(1) as u32,
            a.num_cols.saturating_sub(1) as u32,
        ))
        .leading_zeros();
    let (sk, sv, mut stats) = sort_pairs(device, &keys, &vals, bits.max(1), 2048);
    let (c, reduce_stats) = reduce_sorted_coo(device, &sk, &sv, a.num_rows, a.num_cols);
    stats.add(&reduce_stats);
    (c, stats)
}

/// ESC SpGEMM: expand every product with its value, sort the monolithic
/// intermediate COO matrix, compress duplicates (the Cusp bars of Figure 9).
pub fn spgemm_esc(device: &Device, a: &CsrMatrix, b: &CsrMatrix) -> (CsrMatrix, LaunchStats) {
    assert_eq!(a.num_cols, b.num_rows, "inner dimensions must agree");
    // Expansion: one kernel streaming A's nonzeros and the referenced B rows.
    let mut keys: Vec<u64> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    for r in 0..a.num_rows {
        for (k, av) in a.row_cols(r).iter().zip(a.row_vals(r)) {
            let k = *k as usize;
            for (c, bv) in b.row_cols(k).iter().zip(b.row_vals(k)) {
                keys.push(pack_key(r as u32, *c));
                vals.push(av * bv);
            }
        }
    }
    let n = keys.len();
    let nv = 2048;
    let (_, mut stats) = launch_map_named(
        device,
        "esc_expand",
        LaunchConfig::new(n.div_ceil(nv).max(1), 128),
        |cta| {
            let lo = cta.cta_id * nv;
            let hi = (lo + nv).min(n);
            cta.read_coalesced(hi - lo, 4);
            cta.gather(lo..hi, 12);
            cta.alu(2 * (hi - lo) as u64);
            cta.write_coalesced(hi - lo, 16);
        },
    );
    if n == 0 {
        return (CsrMatrix::zeros(a.num_rows, b.num_cols), stats);
    }
    let bits = 64
        - pack_key(
            a.num_rows.saturating_sub(1) as u32,
            b.num_cols.saturating_sub(1) as u32,
        )
        .leading_zeros();
    let (sk, sv, sort_stats) = sort_pairs(device, &keys, &vals, bits.max(1), 2048);
    stats.add(&sort_stats);
    let (c, reduce_stats) = reduce_sorted_coo(device, &sk, &sv, a.num_rows, b.num_cols);
    stats.add(&reduce_stats);
    (c, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_sparse::gen;
    use mps_sparse::ops::{spadd_ref, spgemm_ref, spmv_ref};

    fn dev() -> Device {
        Device::titan()
    }

    #[test]
    fn scalar_and_vector_spmv_match_reference() {
        let a = gen::power_law(300, 300, 1, 1.5, 100, 5);
        let x: Vec<f64> = (0..300).map(|i| 1.0 + (i % 7) as f64).collect();
        let expect = spmv_ref(&a, &x);
        let (ys, _) = spmv_scalar(&dev(), &a, &x);
        let (yv, _) = spmv_vector(&dev(), &a, &x);
        for ((s, v), e) in ys.iter().zip(&yv).zip(&expect) {
            assert!((s - e).abs() < 1e-9 && (v - e).abs() < 1e-9);
        }
    }

    #[test]
    fn scalar_spmv_suffers_on_skewed_rows() {
        // Same nnz, uniform vs skewed: the row-per-thread kernel should be
        // hurt much more by skew than by uniformity.
        let uniform = gen::fixed_per_row(4096, 4096, 8, 1);
        let skewed = gen::power_law(4096, 4096, 1, 1.3, 3000, 2);
        let x = vec![1.0; 4096];
        let (_, su) = spmv_scalar(&dev(), &uniform, &x);
        let (_, ss) = spmv_scalar(&dev(), &skewed, &x);
        let per_nnz_u = su.sim_ms / uniform.nnz() as f64;
        let per_nnz_s = ss.sim_ms / skewed.nnz() as f64;
        assert!(
            per_nnz_s > 1.5 * per_nnz_u,
            "skew should hurt scalar CSR: {per_nnz_s} vs {per_nnz_u}"
        );
    }

    #[test]
    fn global_sort_spadd_matches_reference() {
        let a = gen::random_uniform(200, 200, 5.0, 3.0, 3);
        let b = gen::random_uniform(200, 200, 5.0, 3.0, 4);
        let (c, _) = spadd_global_sort(&dev(), &a, &b);
        assert_eq!(c, spadd_ref(&a, &b));
    }

    #[test]
    fn esc_spgemm_matches_reference() {
        let a = gen::random_uniform(80, 80, 4.0, 2.0, 5);
        let (c, _) = spgemm_esc(&dev(), &a, &a);
        assert!(c.approx_eq(&spgemm_ref(&a, &a), 1e-12));
    }

    #[test]
    fn esc_handles_empty_product() {
        let a = CsrMatrix::zeros(4, 4);
        let (c, _) = spgemm_esc(&dev(), &a, &a);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn spadd_empty_operands() {
        let a = CsrMatrix::zeros(3, 3);
        let (c, _) = spadd_global_sort(&dev(), &a, &a);
        assert_eq!(c.nnz(), 0);
    }
}
