//! Grid launch: run a kernel body over every CTA and aggregate cost.
//!
//! The launcher is deliberately functional: the kernel body receives a
//! [`Cta`] and returns that block's output value (usually a small struct or
//! a `Vec` covering the block's disjoint output range). The host reassembles
//! the per-CTA outputs in block order, which keeps execution deterministic
//! and data-race free while still letting rayon run blocks concurrently.

use rayon::prelude::*;

use crate::cost::Counters;
use crate::cta::Cta;
use crate::device::Device;
use crate::sched::makespan;
use crate::trace::{KernelRecord, Phase};

/// Grid geometry for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of CTAs.
    pub grid_dim: usize,
    /// Threads per CTA.
    pub block_dim: usize,
}

impl LaunchConfig {
    pub fn new(grid_dim: usize, block_dim: usize) -> Self {
        LaunchConfig {
            grid_dim,
            block_dim,
        }
    }

    /// Grid sized to cover `work` items at `per_cta` items per block.
    ///
    /// A `per_cta` of zero is treated as one item per block (a zero-item
    /// tile cannot cover anything), so degenerate configurations launch a
    /// valid one-CTA grid instead of dividing by zero.
    pub fn cover(work: usize, per_cta: usize, block_dim: usize) -> Self {
        LaunchConfig {
            grid_dim: work.div_ceil(per_cta.max(1)).max(1),
            block_dim,
        }
    }
}

/// Aggregated result of a kernel launch.
#[derive(Debug, Clone, Default)]
pub struct LaunchStats {
    /// Cycle estimate of each CTA, in block order.
    pub per_cta_cycles: Vec<u64>,
    /// Counters summed over all CTAs.
    pub totals: Counters,
    /// Simulated kernel time under the wave scheduler, in milliseconds.
    pub sim_ms: f64,
}

impl LaunchStats {
    /// Combine stats of consecutive kernel launches (times add; counters
    /// accumulate; per-CTA vectors concatenate).
    pub fn add(&mut self, other: &LaunchStats) {
        self.per_cta_cycles.extend_from_slice(&other.per_cta_cycles);
        self.totals.add(&other.totals);
        self.sim_ms += other.sim_ms;
    }
}

/// Launch `grid_dim` CTAs, collecting each block's output into a `Vec` in
/// block order, together with the launch's simulated cost.
pub fn launch_map<T, F>(device: &Device, cfg: LaunchConfig, body: F) -> (Vec<T>, LaunchStats)
where
    T: Send,
    F: Fn(&mut Cta) -> T + Sync,
{
    launch_map_named(device, "unnamed", cfg, body)
}

/// [`launch_map`] with a kernel name recorded by the device tracer. The
/// record is attributed to the calling thread's current [`Phase`] (set by
/// [`crate::Device::phase_scope`]), or [`Phase::Unattributed`] outside any
/// scope.
pub fn launch_map_named<T, F>(
    device: &Device,
    name: &'static str,
    cfg: LaunchConfig,
    body: F,
) -> (Vec<T>, LaunchStats)
where
    T: Send,
    F: Fn(&mut Cta) -> T + Sync,
{
    launch_map_phased(device, name, Phase::current(), cfg, body)
}

/// [`launch_map_named`] with an explicit [`Phase`] label. Use this at core
/// kernel sites: the explicit label wins over any enclosing scope and is
/// correct even when the launch is issued from a rayon worker thread.
pub fn launch_map_phased<T, F>(
    device: &Device,
    name: &'static str,
    phase: Phase,
    cfg: LaunchConfig,
    body: F,
) -> (Vec<T>, LaunchStats)
where
    T: Send,
    F: Fn(&mut Cta) -> T + Sync,
{
    let warp = device.props.warp_size;
    let cost = &device.cost;
    // Cost folding is fused into the worker closure: each chunk prices its
    // CTAs while it still holds the counters in cache, leaving only the
    // cheap serial accumulation to the submitting thread. The block width
    // feeds the shim's work-aware cutoff so tiny grids stay inline.
    let results: Vec<(T, Counters, u64)> = (0..cfg.grid_dim)
        .into_par_iter()
        .with_item_work(cfg.block_dim as u64)
        .map(|cta_id| {
            let mut cta = Cta::new(cta_id, cfg.grid_dim, cfg.block_dim, warp);
            let out = body(&mut cta);
            let counters = cta.into_counters();
            let cycles = cost.cta_cycles(&counters);
            (out, counters, cycles)
        })
        .collect();

    let mut outputs = Vec::with_capacity(results.len());
    let mut per_cta_cycles = Vec::with_capacity(results.len());
    let mut totals = Counters::default();
    for (out, counters, cycles) in results {
        per_cta_cycles.push(cycles);
        totals.add(&counters);
        outputs.push(out);
    }
    let cycles = makespan(&device.props, &per_cta_cycles);
    let stats = LaunchStats {
        per_cta_cycles,
        totals,
        sim_ms: device.cycles_to_ms(cycles),
    };
    if let Some(tracer) = &device.tracer {
        tracer.record(KernelRecord {
            name,
            phase,
            grid_dim: cfg.grid_dim,
            block_dim: cfg.block_dim,
            makespan_cycles: cycles,
            sim_ms: stats.sim_ms,
            dram_bytes: stats.totals.dram_bytes(),
        });
    }
    (outputs, stats)
}

/// Reusable scratch for [`launch_map_into`]: owns the per-CTA
/// (output, counters) staging vector between launches so repeated launches
/// of a same-shaped kernel perform no heap allocation in steady state.
#[derive(Debug)]
pub struct LaunchBuffers<T> {
    pairs: Vec<(T, Counters, u64)>,
}

impl<T> LaunchBuffers<T> {
    pub fn new() -> Self {
        LaunchBuffers { pairs: Vec::new() }
    }
}

impl<T> Default for LaunchBuffers<T> {
    fn default() -> Self {
        LaunchBuffers::new()
    }
}

/// [`launch_map_named`] writing into caller-owned buffers: outputs land in
/// `outputs` (block order) and the launch's cost overwrites `stats`, both
/// reusing their existing capacity. `bufs` carries the internal staging
/// vector across launches.
pub fn launch_map_into<T, F>(
    device: &Device,
    name: &'static str,
    cfg: LaunchConfig,
    body: F,
    bufs: &mut LaunchBuffers<T>,
    outputs: &mut Vec<T>,
    stats: &mut LaunchStats,
) where
    T: Send,
    F: Fn(&mut Cta) -> T + Sync,
{
    launch_map_into_phased(
        device,
        name,
        Phase::current(),
        cfg,
        body,
        bufs,
        outputs,
        stats,
    )
}

/// [`launch_map_into`] with an explicit [`Phase`] label.
#[allow(clippy::too_many_arguments)]
pub fn launch_map_into_phased<T, F>(
    device: &Device,
    name: &'static str,
    phase: Phase,
    cfg: LaunchConfig,
    body: F,
    bufs: &mut LaunchBuffers<T>,
    outputs: &mut Vec<T>,
    stats: &mut LaunchStats,
) where
    T: Send,
    F: Fn(&mut Cta) -> T + Sync,
{
    let warp = device.props.warp_size;
    let cost = &device.cost;
    (0..cfg.grid_dim)
        .into_par_iter()
        .with_item_work(cfg.block_dim as u64)
        .map(|cta_id| {
            let mut cta = Cta::new(cta_id, cfg.grid_dim, cfg.block_dim, warp);
            let out = body(&mut cta);
            let counters = cta.into_counters();
            let cycles = cost.cta_cycles(&counters);
            (out, counters, cycles)
        })
        .collect_into_vec(&mut bufs.pairs);

    outputs.clear();
    stats.per_cta_cycles.clear();
    stats.totals = Counters::default();
    for (out, counters, cycles) in bufs.pairs.drain(..) {
        stats.per_cta_cycles.push(cycles);
        stats.totals.add(&counters);
        outputs.push(out);
    }
    let cycles = makespan(&device.props, &stats.per_cta_cycles);
    stats.sim_ms = device.cycles_to_ms(cycles);
    if let Some(tracer) = &device.tracer {
        tracer.record(KernelRecord {
            name,
            phase,
            grid_dim: cfg.grid_dim,
            block_dim: cfg.block_dim,
            makespan_cycles: cycles,
            sim_ms: stats.sim_ms,
            dram_bytes: stats.totals.dram_bytes(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_rounds_grid_up_and_never_zero() {
        assert_eq!(LaunchConfig::cover(1000, 256, 128).grid_dim, 4);
        assert_eq!(LaunchConfig::cover(1024, 256, 128).grid_dim, 4);
        assert_eq!(LaunchConfig::cover(0, 256, 128).grid_dim, 1);
    }

    #[test]
    fn cover_clamps_zero_items_per_cta() {
        // A zero-item tile must not divide by zero: it degrades to one
        // item per block.
        assert_eq!(LaunchConfig::cover(0, 0, 128).grid_dim, 1);
        assert_eq!(LaunchConfig::cover(7, 0, 128).grid_dim, 7);
        assert_eq!(LaunchConfig::cover(7, 0, 64).block_dim, 64);
    }

    #[test]
    fn launch_outputs_are_in_block_order() {
        let dev = Device::titan();
        let (out, _) = launch_map(&dev, LaunchConfig::new(64, 128), |cta| cta.cta_id * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn launch_accumulates_counters_across_ctas() {
        let dev = Device::titan();
        let (_, stats) = launch_map(&dev, LaunchConfig::new(10, 128), |cta| {
            cta.alu(100);
            cta.read_coalesced(32, 4);
        });
        assert_eq!(stats.totals.alu_ops, 1000);
        assert_eq!(stats.totals.dram_transactions, 10);
        assert_eq!(stats.per_cta_cycles.len(), 10);
        assert!(stats.sim_ms > 0.0);
    }

    #[test]
    fn stats_add_concatenates_and_sums() {
        let dev = Device::titan();
        let (_, mut a) = launch_map(&dev, LaunchConfig::new(2, 32), |cta| cta.alu(1));
        let (_, b) = launch_map(&dev, LaunchConfig::new(3, 32), |cta| cta.alu(1));
        let total_ms = a.sim_ms + b.sim_ms;
        a.add(&b);
        assert_eq!(a.per_cta_cycles.len(), 5);
        assert!((a.sim_ms - total_ms).abs() < 1e-12);
    }

    #[test]
    fn launch_map_into_matches_launch_map_and_reuses_buffers() {
        let dev = Device::titan();
        let cfg = LaunchConfig::new(48, 128);
        let body = |cta: &mut Cta| {
            cta.alu(10 * (cta.cta_id as u64 + 1));
            cta.read_coalesced(64, 8);
            cta.cta_id * 3
        };
        let (expect_out, expect_stats) = launch_map(&dev, cfg, body);

        let mut bufs = LaunchBuffers::new();
        let mut outputs = Vec::new();
        let mut stats = LaunchStats::default();
        launch_map_into(
            &dev,
            "reused",
            cfg,
            body,
            &mut bufs,
            &mut outputs,
            &mut stats,
        );
        assert_eq!(outputs, expect_out);
        assert_eq!(stats.per_cta_cycles, expect_stats.per_cta_cycles);
        assert_eq!(stats.sim_ms, expect_stats.sim_ms);
        assert_eq!(stats.totals.alu_ops, expect_stats.totals.alu_ops);

        // Second launch reuses every buffer in place.
        let out_ptr = outputs.as_ptr();
        let cyc_ptr = stats.per_cta_cycles.as_ptr();
        launch_map_into(
            &dev,
            "reused",
            cfg,
            body,
            &mut bufs,
            &mut outputs,
            &mut stats,
        );
        assert_eq!(outputs, expect_out);
        assert_eq!(outputs.as_ptr(), out_ptr, "output buffer must be reused");
        assert_eq!(
            stats.per_cta_cycles.as_ptr(),
            cyc_ptr,
            "cycles buffer must be reused"
        );
        assert_eq!(
            stats.sim_ms, expect_stats.sim_ms,
            "stats overwrite, not accumulate"
        );
    }

    #[test]
    fn imbalanced_grid_simulates_slower_than_balanced_grid() {
        let dev = Device::titan();
        let slots = dev.props.num_sms * dev.props.max_ctas_per_sm;
        let ctas = slots * 4;
        // Balanced: every CTA does the same work.
        let (_, bal) = launch_map(&dev, LaunchConfig::new(ctas, 128), |cta| cta.alu(32_000));
        // Imbalanced: same total work concentrated in one CTA.
        let total = 32_000u64 * ctas as u64;
        let (_, imb) = launch_map(&dev, LaunchConfig::new(ctas, 128), move |cta| {
            if cta.cta_id == 0 {
                cta.alu(total);
            }
        });
        assert!(
            imb.sim_ms > bal.sim_ms * 2.0,
            "imbalance should dominate: {} vs {}",
            imb.sim_ms,
            bal.sim_ms
        );
    }
}
