//! Block-wide LSD radix sort (CUB-style).
//!
//! Sorts a CTA tile of `u32` keys (optionally carrying a `u32` value) over a
//! caller-chosen bit range. The digit width is [`RADIX_BITS`] bits per pass,
//! so narrowing the sorted bit range reduces the number of ranking passes —
//! the optimization Figure 4 of the paper quantifies (`1P(28-bits)` …
//! `1P(12-bits)`), enabled by sorting only `ceil(log2(n_cols))` bits and
//! embedding permutation indices in the unused upper key bits.
//!
//! Cost per digit pass per item: ranking through shared memory (8 shared
//! ops, 16 ALU) plus 3 barriers per pass; moving a value payload adds 2
//! shared + 2 ALU per item per pass.

use crate::cta::Cta;

/// Digit width of one ranking pass.
pub const RADIX_BITS: u32 = 4;

/// Ranking passes needed to sort `bits` key bits.
pub fn passes_for_bits(bits: u32) -> u32 {
    bits.div_ceil(RADIX_BITS)
}

/// Cost facts reported by a block sort invocation (consumed by the Fig. 4
/// microbenchmark).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSortCost {
    pub digit_passes: u32,
    pub items: usize,
}

const SHMEM_PER_ITEM_PASS: u64 = 8;
const ALU_PER_ITEM_PASS: u64 = 16;
const VALUE_SHMEM_PER_ITEM_PASS: u64 = 2;
const VALUE_ALU_PER_ITEM_PASS: u64 = 2;
const SYNCS_PER_PASS: u64 = 3;

fn charge_passes(cta: &mut Cta, items: usize, passes: u32, with_values: bool) {
    let n = items as u64;
    let p = passes as u64;
    let mut shmem = SHMEM_PER_ITEM_PASS;
    let mut alu = ALU_PER_ITEM_PASS;
    if with_values {
        shmem += VALUE_SHMEM_PER_ITEM_PASS;
        alu += VALUE_ALU_PER_ITEM_PASS;
    }
    cta.shmem(shmem * n * p);
    cta.alu(alu * n * p);
    for _ in 0..p * SYNCS_PER_PASS {
        cta.sync();
    }
}

fn masked(key: u32, begin_bit: u32, end_bit: u32) -> u32 {
    debug_assert!(begin_bit <= end_bit && end_bit <= 32);
    if end_bit == begin_bit {
        return 0;
    }
    let width = end_bit - begin_bit;
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    (key >> begin_bit) & mask
}

/// Stable keys-only sort of the bit range `[begin_bit, end_bit)`.
pub fn block_radix_sort_keys(
    cta: &mut Cta,
    keys: &mut [u32],
    begin_bit: u32,
    end_bit: u32,
) -> BlockSortCost {
    let passes = passes_for_bits(end_bit - begin_bit);
    charge_passes(cta, keys.len(), passes, false);
    keys.sort_by_key(|&k| masked(k, begin_bit, end_bit));
    BlockSortCost {
        digit_passes: passes,
        items: keys.len(),
    }
}

/// Stable key-value pair sort of the bit range `[begin_bit, end_bit)`.
pub fn block_radix_sort_pairs(
    cta: &mut Cta,
    keys: &mut [u32],
    values: &mut [u32],
    begin_bit: u32,
    end_bit: u32,
) -> BlockSortCost {
    assert_eq!(
        keys.len(),
        values.len(),
        "pair sort needs equal-length tiles"
    );
    let passes = passes_for_bits(end_bit - begin_bit);
    charge_passes(cta, keys.len(), passes, true);
    let mut zipped: Vec<(u32, u32)> = keys.iter().copied().zip(values.iter().copied()).collect();
    zipped.sort_by_key(|&(k, _)| masked(k, begin_bit, end_bit));
    for (i, (k, v)) in zipped.into_iter().enumerate() {
        keys[i] = k;
        values[i] = v;
    }
    BlockSortCost {
        digit_passes: passes,
        items: keys.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cta() -> Cta {
        Cta::new(0, 1, 128, 32)
    }

    #[test]
    fn passes_round_up() {
        assert_eq!(passes_for_bits(0), 0);
        assert_eq!(passes_for_bits(1), 1);
        assert_eq!(passes_for_bits(4), 1);
        assert_eq!(passes_for_bits(5), 2);
        assert_eq!(passes_for_bits(32), 8);
    }

    #[test]
    fn keys_sort_full_range() {
        let mut c = cta();
        let mut keys = vec![5u32, 1, 4, 1, 3];
        block_radix_sort_keys(&mut c, &mut keys, 0, 32);
        assert_eq!(keys, vec![1, 1, 3, 4, 5]);
    }

    #[test]
    fn partial_bit_range_sort_is_stable_on_upper_bits() {
        let mut c = cta();
        // Low byte is the sort key; high byte is a payload tag that must
        // keep insertion order within equal low bytes (stability).
        let mut keys = vec![0x0102u32, 0x0201, 0x0301, 0x0402];
        block_radix_sort_keys(&mut c, &mut keys, 0, 8);
        assert_eq!(keys, vec![0x0201, 0x0301, 0x0102, 0x0402]);
    }

    #[test]
    fn pair_sort_carries_values() {
        let mut c = cta();
        let mut keys = vec![3u32, 1, 2];
        let mut vals = vec![30u32, 10, 20];
        block_radix_sort_pairs(&mut c, &mut keys, &mut vals, 0, 32);
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(vals, vec![10, 20, 30]);
    }

    #[test]
    fn narrower_bits_cost_fewer_cycles() {
        let model = crate::cost::CostModel::default();
        let mut wide = cta();
        let mut keys: Vec<u32> = (0..1408).rev().collect();
        block_radix_sort_keys(&mut wide, &mut keys.clone(), 0, 28);
        let mut narrow = cta();
        block_radix_sort_keys(&mut narrow, &mut keys, 0, 12);
        let cw = model.cta_cycles(wide.counters());
        let cn = model.cta_cycles(narrow.counters());
        assert!(cn < cw, "12-bit sort {cn} should beat 28-bit {cw}");
    }

    #[test]
    fn pair_sort_costs_more_than_keys_only() {
        let model = crate::cost::CostModel::default();
        let keys: Vec<u32> = (0..1408).rev().collect();
        let mut a = cta();
        block_radix_sort_keys(&mut a, &mut keys.clone(), 0, 32);
        let mut b = cta();
        let mut vals = vec![0u32; 1408];
        block_radix_sort_pairs(&mut b, &mut keys.clone(), &mut vals, 0, 32);
        assert!(model.cta_cycles(b.counters()) > model.cta_cycles(a.counters()));
    }

    #[test]
    fn zero_width_range_leaves_tile_untouched() {
        let mut c = cta();
        let mut keys = vec![9u32, 3, 7];
        block_radix_sort_keys(&mut c, &mut keys, 8, 8);
        assert_eq!(keys, vec![9, 3, 7]);
        assert_eq!(c.counters().syncs, 0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn pair_sort_length_mismatch_panics() {
        let mut c = cta();
        block_radix_sort_pairs(&mut c, &mut [1u32, 2], &mut [1u32], 0, 32);
    }
}
