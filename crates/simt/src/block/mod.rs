//! Block-wide (CTA-wide) cooperative primitives.
//!
//! These mirror the CUB / ModernGPU building blocks the paper's kernels are
//! assembled from: tile exchange, scan, segmented scan, reduction, radix
//! sort, merge, and partition search. Each primitive implements the real
//! semantics on a host slice representing the CTA's register/shared-memory
//! tile and charges the cost the hardware collective would incur.

pub mod exchange;
pub mod histogram;
pub mod merge;
pub mod radix_sort;
pub mod reduce;
pub mod scan;
pub mod search;
pub mod segscan;

pub use exchange::{blocked_to_striped, striped_to_blocked};
pub use histogram::{block_compact, block_histogram};
pub use merge::block_merge_by;
pub use radix_sort::{block_radix_sort_keys, block_radix_sort_pairs, BlockSortCost};
pub use reduce::block_reduce;
pub use scan::{block_exclusive_scan, block_inclusive_scan, Semigroup};
pub use search::{binary_search_partition, load_balance_search, merge_path_search};
pub use segscan::{block_segmented_reduce, SegmentedReduceOut};
