//! Block-wide prefix scans.
//!
//! Cost model: the canonical warp-scan + shared-memory-of-warp-aggregates
//! construction — every item participates in `log2(warp)` shuffle steps,
//! plus one shared-memory round trip for the warp aggregates and two
//! barriers. Charged as `2n` ALU + `2n` shared ops + 2 syncs for an
//! `n`-item tile.

use crate::cta::Cta;

/// Values a scan/reduce can combine. Addition-like: associative with an
/// identity. Implemented for the arithmetic types the kernels use.
pub trait Semigroup: Copy {
    fn identity() -> Self;
    fn combine(self, other: Self) -> Self;
}

macro_rules! impl_sum_semigroup {
    ($($t:ty),*) => {$(
        impl Semigroup for $t {
            #[inline]
            fn identity() -> Self { 0 as $t }
            #[inline]
            fn combine(self, other: Self) -> Self { self + other }
        }
    )*};
}

impl_sum_semigroup!(f64, f32, u32, u64, usize, i64);

fn charge_scan(cta: &mut Cta, n: usize) {
    cta.alu(2 * n as u64);
    cta.shmem(2 * n as u64);
    cta.sync();
    cta.sync();
}

/// In-place inclusive scan of a CTA tile. Returns the tile aggregate.
pub fn block_inclusive_scan<T: Semigroup>(cta: &mut Cta, tile: &mut [T]) -> T {
    charge_scan(cta, tile.len());
    let mut acc = T::identity();
    for v in tile.iter_mut() {
        acc = acc.combine(*v);
        *v = acc;
    }
    acc
}

/// In-place exclusive scan of a CTA tile. Returns the tile aggregate.
pub fn block_exclusive_scan<T: Semigroup>(cta: &mut Cta, tile: &mut [T]) -> T {
    charge_scan(cta, tile.len());
    let mut acc = T::identity();
    for v in tile.iter_mut() {
        let next = acc.combine(*v);
        *v = acc;
        acc = next;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cta() -> Cta {
        Cta::new(0, 1, 128, 32)
    }

    #[test]
    fn inclusive_scan_and_aggregate() {
        let mut c = cta();
        let mut tile = vec![1u64, 2, 3, 4];
        let agg = block_inclusive_scan(&mut c, &mut tile);
        assert_eq!(tile, vec![1, 3, 6, 10]);
        assert_eq!(agg, 10);
    }

    #[test]
    fn exclusive_scan_shifts_by_identity() {
        let mut c = cta();
        let mut tile = vec![1u64, 2, 3, 4];
        let agg = block_exclusive_scan(&mut c, &mut tile);
        assert_eq!(tile, vec![0, 1, 3, 6]);
        assert_eq!(agg, 10);
    }

    #[test]
    fn scan_charges_two_barriers() {
        let mut c = cta();
        let mut tile = vec![0.0f64; 256];
        block_inclusive_scan(&mut c, &mut tile);
        assert_eq!(c.counters().syncs, 2);
        assert_eq!(c.counters().alu_ops, 512);
    }

    #[test]
    fn empty_tile_scan_is_identity() {
        let mut c = cta();
        let mut tile: Vec<f64> = vec![];
        assert_eq!(block_inclusive_scan(&mut c, &mut tile), 0.0);
    }

    #[test]
    fn float_scan_accumulates() {
        let mut c = cta();
        let mut tile = vec![0.5f64; 8];
        let agg = block_inclusive_scan(&mut c, &mut tile);
        assert!((agg - 4.0).abs() < 1e-12);
        assert!((tile[3] - 2.0).abs() < 1e-12);
    }
}
