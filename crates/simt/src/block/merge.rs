//! CTA-wide merge of two sorted tiles via merge-path partitioning.
//!
//! Each thread binary-searches its pair of diagonals, then serially merges
//! its equal-sized slice of the output — property (1) and (2) of merge path:
//! equal work per thread, no inter-thread communication beyond the
//! partition search.

use crate::cta::Cta;

use super::search::merge_path_search_by;

/// Merge sorted `a` and `b` into one sorted vector, distributing the work
/// over `threads` virtual threads. `a_wins(x, y)` is the "consume from `a`"
/// predicate (stable merge: `x <= y`).
pub fn block_merge_by<T, F>(cta: &mut Cta, a: &[T], b: &[T], threads: usize, a_wins: F) -> Vec<T>
where
    T: Copy,
    F: Fn(&T, &T) -> bool,
{
    let total = a.len() + b.len();
    let threads = threads.max(1);
    let per_thread = total.div_ceil(threads);
    let mut out = Vec::with_capacity(total);

    // One diagonal search per thread, then a serial merge of its range.
    for t in 0..threads {
        let d0 = (t * per_thread).min(total);
        let d1 = ((t + 1) * per_thread).min(total);
        if d0 == d1 {
            continue;
        }
        let mut i = merge_path_search_by(cta, a, b, d0, &a_wins);
        let mut j = d0 - i;
        cta.alu(2 * (d1 - d0) as u64); // one compare + one move per output
        for _ in d0..d1 {
            let take_a = if i >= a.len() {
                false
            } else if j >= b.len() {
                true
            } else {
                a_wins(&a[i], &b[j])
            };
            if take_a {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cta() -> Cta {
        Cta::new(0, 1, 128, 32)
    }

    fn le(a: &u32, b: &u32) -> bool {
        a <= b
    }

    #[test]
    fn merges_disjoint_ranges() {
        let mut c = cta();
        let out = block_merge_by(&mut c, &[1, 2, 3], &[4, 5, 6], 4, le);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merges_interleaved_with_many_threads() {
        let mut c = cta();
        let a: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..100).map(|i| i * 2 + 1).collect();
        let out = block_merge_by(&mut c, &a, &b, 32, le);
        let expected: Vec<u32> = (0..200).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn stable_on_duplicates_a_first() {
        let mut c = cta();
        // Tag elements by side in the upper bits; compare only low bits.
        let a = [0x10u32, 0x17, 0x17];
        let b = [0x27u32, 0x29];
        let out = block_merge_by(&mut c, &a, &b, 3, |x, y| (x & 0xf) <= (y & 0xf));
        assert_eq!(out, vec![0x10, 0x17, 0x17, 0x27, 0x29]);
    }

    #[test]
    fn empty_inputs() {
        let mut c = cta();
        let empty: [u32; 0] = [];
        assert_eq!(
            block_merge_by(&mut c, &empty, &empty, 8, le),
            Vec::<u32>::new()
        );
        assert_eq!(block_merge_by(&mut c, &[1, 2], &empty, 8, le), vec![1, 2]);
        assert_eq!(block_merge_by(&mut c, &empty, &[1, 2], 8, le), vec![1, 2]);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let mut c = cta();
        let a: Vec<u32> = vec![1, 1, 2, 5, 9, 9, 9];
        let b: Vec<u32> = vec![0, 1, 3, 9, 12];
        let t1 = block_merge_by(&mut c, &a, &b, 1, le);
        let t7 = block_merge_by(&mut c, &a, &b, 7, le);
        let t128 = block_merge_by(&mut c, &a, &b, 128, le);
        assert_eq!(t1, t7);
        assert_eq!(t1, t128);
    }
}
