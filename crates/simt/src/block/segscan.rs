//! Block-wide segmented reduction.
//!
//! The workhorse of the merge SpMV reduction phase: a CTA holds a tile of
//! per-nonzero products in blocked order together with each product's
//! (non-decreasing) segment id — the expanded row index. A segmented scan
//! produces the sum of every segment that *ends* inside the tile; the
//! trailing segment may continue into the next CTA, so its partial sum is
//! returned as the carry-out and folded in later by the update phase.
//!
//! Cost: a flag-augmented scan — `3n` ALU (combine + flag test), `2n`
//! shared ops and two barriers.

use crate::cta::Cta;

/// Result of a segmented reduction over one CTA tile.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentedReduceOut {
    /// `(segment id, sum)` for every segment whose last element lies in
    /// this tile, in segment order — excluding the tile's final segment.
    pub complete: Vec<(usize, f64)>,
    /// Partial sum of the tile's final segment (the CTA carry-out).
    /// `None` only for an empty tile.
    pub carry: Option<(usize, f64)>,
}

/// Segmented sum over `values`, where `segments[i]` is the non-decreasing
/// segment id of `values[i]`.
///
/// # Panics
/// Debug-asserts that `segments` is non-decreasing and the slices have
/// equal length.
pub fn block_segmented_reduce(
    cta: &mut Cta,
    values: &[f64],
    segments: &[usize],
) -> SegmentedReduceOut {
    debug_assert_eq!(values.len(), segments.len());
    debug_assert!(segments.windows(2).all(|w| w[0] <= w[1]));

    let n = values.len();
    cta.alu(3 * n as u64);
    cta.shmem(2 * n as u64);
    cta.sync();
    cta.sync();

    let mut complete = Vec::new();
    let mut carry = None;
    let mut i = 0;
    while i < n {
        let seg = segments[i];
        let mut sum = 0.0;
        while i < n && segments[i] == seg {
            sum += values[i];
            i += 1;
        }
        if i == n {
            carry = Some((seg, sum));
        } else {
            complete.push((seg, sum));
        }
    }
    SegmentedReduceOut { complete, carry }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cta() -> Cta {
        Cta::new(0, 1, 128, 32)
    }

    #[test]
    fn single_segment_is_all_carry() {
        let mut c = cta();
        let out = block_segmented_reduce(&mut c, &[1.0, 2.0, 3.0], &[5, 5, 5]);
        assert!(out.complete.is_empty());
        assert_eq!(out.carry, Some((5, 6.0)));
    }

    #[test]
    fn interior_segments_complete_trailing_is_carry() {
        let mut c = cta();
        let vals = [1.0, 1.0, 2.0, 3.0, 4.0, 4.0];
        let segs = [0, 0, 1, 2, 3, 3];
        let out = block_segmented_reduce(&mut c, &vals, &segs);
        assert_eq!(out.complete, vec![(0, 2.0), (1, 2.0), (2, 3.0)]);
        assert_eq!(out.carry, Some((3, 8.0)));
    }

    #[test]
    fn empty_tile_has_no_carry() {
        let mut c = cta();
        let out = block_segmented_reduce(&mut c, &[], &[]);
        assert!(out.complete.is_empty());
        assert!(out.carry.is_none());
    }

    #[test]
    fn segment_ids_may_skip_values() {
        // Empty rows never appear as segment ids; ids just jump.
        let mut c = cta();
        let out = block_segmented_reduce(&mut c, &[1.0, 2.0], &[0, 7]);
        assert_eq!(out.complete, vec![(0, 1.0)]);
        assert_eq!(out.carry, Some((7, 2.0)));
    }

    #[test]
    fn cost_charges_scan_shape() {
        let mut c = cta();
        block_segmented_reduce(&mut c, &[0.0; 64], &[0; 64]);
        assert_eq!(c.counters().alu_ops, 192);
        assert_eq!(c.counters().shmem_ops, 128);
        assert_eq!(c.counters().syncs, 2);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn decreasing_segments_panic_in_debug() {
        let mut c = cta();
        block_segmented_reduce(&mut c, &[1.0, 1.0], &[1, 0]);
    }
}
