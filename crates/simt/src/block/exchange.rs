//! Tile exchange: striped ↔ blocked rearrangement through shared memory.
//!
//! Kernels load global data in *striped* order (thread `t` holds items
//! `t, t+T, t+2T, …` — coalesced) but operate on *blocked* order (thread
//! `t` holds items `t·I .. t·I+I` — contiguous). The exchange costs one
//! shared-memory store + load per item and two barriers; this is the
//! transpose the paper's SpMV reduction phase performs before its
//! segmented scan.

use crate::cta::Cta;

fn charge_exchange(cta: &mut Cta, n: usize) {
    cta.shmem(2 * n as u64);
    cta.sync();
    cta.sync();
}

/// Reorder a tile from striped to blocked arrangement for `threads` threads.
///
/// Striped item `(t, i)` lives at index `i*threads + t`; blocked at
/// `t*items + i`. Lengths that are not a multiple of `threads` keep the
/// trailing partial stripe in order.
pub fn striped_to_blocked<T: Copy>(cta: &mut Cta, tile: &mut [T], threads: usize) {
    charge_exchange(cta, tile.len());
    let n = tile.len();
    if threads <= 1 || n <= 1 {
        return;
    }
    let items = n.div_ceil(threads);
    let src: Vec<T> = tile.to_vec();
    let mut dst_idx = 0;
    for t in 0..threads {
        for i in 0..items {
            let striped = i * threads + t;
            if striped < n {
                tile[dst_idx] = src[striped];
                dst_idx += 1;
            }
        }
    }
    debug_assert_eq!(dst_idx, n);
}

/// Inverse of [`striped_to_blocked`].
pub fn blocked_to_striped<T: Copy>(cta: &mut Cta, tile: &mut [T], threads: usize) {
    charge_exchange(cta, tile.len());
    let n = tile.len();
    if threads <= 1 || n <= 1 {
        return;
    }
    let items = n.div_ceil(threads);
    let src: Vec<T> = tile.to_vec();
    let mut src_idx = 0;
    for t in 0..threads {
        for i in 0..items {
            let striped = i * threads + t;
            if striped < n {
                tile[striped] = src[src_idx];
                src_idx += 1;
            }
        }
    }
    debug_assert_eq!(src_idx, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cta() -> Cta {
        Cta::new(0, 1, 4, 32)
    }

    #[test]
    fn striped_to_blocked_four_threads() {
        let mut c = cta();
        // striped for 4 threads, 2 items each: t0 holds 0,4; t1 holds 1,5 …
        let mut tile = vec![0, 1, 2, 3, 4, 5, 6, 7];
        striped_to_blocked(&mut c, &mut tile, 4);
        assert_eq!(tile, vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn round_trip_is_identity() {
        let mut c = cta();
        let orig: Vec<u32> = (0..24).collect();
        let mut tile = orig.clone();
        striped_to_blocked(&mut c, &mut tile, 4);
        blocked_to_striped(&mut c, &mut tile, 4);
        assert_eq!(tile, orig);
    }

    #[test]
    fn ragged_tile_round_trip() {
        let mut c = cta();
        let orig: Vec<u32> = (0..10).collect(); // not a multiple of 4
        let mut tile = orig.clone();
        striped_to_blocked(&mut c, &mut tile, 4);
        blocked_to_striped(&mut c, &mut tile, 4);
        assert_eq!(tile, orig);
    }

    #[test]
    fn exchange_charges_shared_memory_and_syncs() {
        let mut c = cta();
        let mut tile = vec![0u32; 128];
        striped_to_blocked(&mut c, &mut tile, 4);
        assert_eq!(c.counters().shmem_ops, 256);
        assert_eq!(c.counters().syncs, 2);
    }

    #[test]
    fn single_thread_exchange_is_noop() {
        let mut c = cta();
        let mut tile = vec![3, 1, 2];
        striped_to_blocked(&mut c, &mut tile, 1);
        assert_eq!(tile, vec![3, 1, 2]);
    }
}
