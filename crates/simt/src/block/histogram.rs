//! Block-wide histogram and stream compaction.
//!
//! The remaining CUB collectives the sparse pipelines lean on implicitly:
//! radix ranking is a histogram + scan, and duplicate-flag reduction is a
//! compaction. Exposed as standalone primitives for kernel authors.

use crate::cta::Cta;

/// Histogram a tile of values into `bins` buckets (values ≥ `bins` are
/// clamped into the last bucket). Cost: one shared-memory atomic per item
/// plus a barrier.
pub fn block_histogram(cta: &mut Cta, tile: &[u32], bins: usize) -> Vec<u32> {
    assert!(bins > 0, "need at least one bin");
    cta.shmem(tile.len() as u64 + bins as u64);
    cta.alu(tile.len() as u64);
    cta.sync();
    let mut hist = vec![0u32; bins];
    for &v in tile {
        let b = (v as usize).min(bins - 1);
        hist[b] += 1;
    }
    hist
}

/// Compact the tile's selected items, preserving order. Cost: a flag scan
/// (2 ALU + 2 shared per item, two barriers) plus the compacted writes.
pub fn block_compact<T: Copy>(cta: &mut Cta, tile: &[T], keep: &[bool]) -> Vec<T> {
    assert_eq!(tile.len(), keep.len(), "flag slice must match tile");
    cta.alu(2 * tile.len() as u64);
    cta.shmem(2 * tile.len() as u64);
    cta.sync();
    cta.sync();
    tile.iter()
        .zip(keep)
        .filter_map(|(&v, &k)| k.then_some(v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cta() -> Cta {
        Cta::new(0, 1, 128, 32)
    }

    #[test]
    fn histogram_counts_each_bin() {
        let mut c = cta();
        let tile = [0u32, 1, 1, 2, 2, 2, 9];
        let h = block_histogram(&mut c, &tile, 4);
        assert_eq!(h, vec![1, 2, 3, 1]); // 9 clamps to the last bin
        assert_eq!(h.iter().sum::<u32>() as usize, tile.len());
    }

    #[test]
    fn histogram_of_empty_tile() {
        let mut c = cta();
        assert_eq!(block_histogram(&mut c, &[], 3), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        block_histogram(&mut cta(), &[1], 0);
    }

    #[test]
    fn compact_preserves_order() {
        let mut c = cta();
        let tile = [10, 20, 30, 40, 50];
        let keep = [true, false, true, false, true];
        assert_eq!(block_compact(&mut c, &tile, &keep), vec![10, 30, 50]);
    }

    #[test]
    fn compact_none_and_all() {
        let mut c = cta();
        let tile = [1, 2, 3];
        assert!(block_compact(&mut c, &tile, &[false; 3]).is_empty());
        assert_eq!(block_compact(&mut c, &tile, &[true; 3]), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "flag slice")]
    fn mismatched_flags_panic() {
        block_compact(&mut cta(), &[1, 2], &[true]);
    }
}
