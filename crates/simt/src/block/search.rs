//! Partitioning searches: merge-path diagonal search and offset search.
//!
//! `merge_path_search` is the binary search along a cross diagonal of the
//! merge grid (Green et al., ICS'12; Figure 1a of the paper): given sorted
//! sequences `a` (x-axis) and `b` (y-axis) and a diagonal `d`, it returns
//! how many elements of `a` lie on the path before the diagonal. Equal keys
//! are consumed from `a` first, matching the serial stable merge.
//!
//! `binary_search_partition` finds, for a work-item index, the enclosing
//! segment in a sorted offsets array — the per-CTA row search of the SpMV
//! partition phase and the SpGEMM expansion setup.

use crate::cta::Cta;

fn log2_cost(n: usize) -> u64 {
    (usize::BITS - n.max(1).leading_zeros()) as u64
}

/// Merge-path diagonal search with an explicit "take from `a`" predicate.
///
/// `a_wins(x, y)` must return true when element `x` of `a` should be
/// consumed before element `y` of `b` (for a stable merge: `x <= y`).
/// Returns `i` such that the merge path crosses diagonal `diag` at
/// coordinates `(i, diag - i)`.
pub fn merge_path_search_by<T, F>(cta: &mut Cta, a: &[T], b: &[T], diag: usize, a_wins: F) -> usize
where
    F: Fn(&T, &T) -> bool,
{
    debug_assert!(diag <= a.len() + b.len());
    let mut lo = diag.saturating_sub(b.len());
    let mut hi = diag.min(a.len());
    cta.alu(log2_cost(hi - lo + 1) * 2);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if a_wins(&a[mid], &b[diag - 1 - mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Merge-path diagonal search for `Ord` keys (stable: ties go to `a`).
pub fn merge_path_search<T: Ord>(cta: &mut Cta, a: &[T], b: &[T], diag: usize) -> usize {
    merge_path_search_by(cta, a, b, diag, |x, y| x <= y)
}

/// Index of the last offset `<= value` in a sorted `offsets` array
/// (`offsets[i] <= value < offsets[i+1]` ⇒ returns `i`). This locates the
/// segment (row) containing global work item `value`.
///
/// # Panics
/// Panics if `offsets` is empty or `value < offsets[0]`.
pub fn binary_search_partition(cta: &mut Cta, offsets: &[usize], value: usize) -> usize {
    assert!(!offsets.is_empty(), "offsets must be non-empty");
    assert!(value >= offsets[0], "value precedes the first segment");
    cta.alu(log2_cost(offsets.len()) * 2);
    // partition_point gives the count of offsets <= value; subtract one for
    // the enclosing segment index.
    offsets.partition_point(|&o| o <= value) - 1
}

/// Load-balancing search (ModernGPU's "load-balance" primitive): map each
/// of the work items `lo..hi` to the segment owning it, given the
/// exclusive prefix `scan` of segment sizes. This is the flat-expansion
/// walk underlying the SpGEMM product decomposition: one binary search
/// locates the first segment, then the cursor advances monotonically.
///
/// Calls `f(item, segment, rank)` where `rank = item - scan[segment]`.
///
/// # Panics
/// Panics (in the initial search) if `scan` is empty or `lo` precedes it.
pub fn load_balance_search(
    cta: &mut Cta,
    scan: &[usize],
    lo: usize,
    hi: usize,
    mut f: impl FnMut(usize, usize, usize),
) {
    if lo >= hi {
        return;
    }
    let mut seg = binary_search_partition(cta, scan, lo);
    cta.alu(2 * (hi - lo) as u64);
    for item in lo..hi {
        while scan[seg + 1] <= item {
            seg += 1;
        }
        f(item, seg, item - scan[seg]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cta() -> Cta {
        Cta::new(0, 1, 128, 32)
    }

    #[test]
    fn diagonal_endpoints() {
        let mut c = cta();
        let a = [1, 3, 5];
        let b = [2, 4, 6];
        assert_eq!(merge_path_search(&mut c, &a, &b, 0), 0);
        assert_eq!(merge_path_search(&mut c, &a, &b, 6), 3);
    }

    #[test]
    fn path_matches_serial_merge() {
        // Merging [1,3,5] and [2,4,6]: path consumes 1,2,3,4,5,6.
        // After d elements, i = count from a.
        let mut c = cta();
        let a = [1, 3, 5];
        let b = [2, 4, 6];
        let expected_i = [0, 1, 1, 2, 2, 3, 3];
        for (d, &want) in expected_i.iter().enumerate() {
            assert_eq!(merge_path_search(&mut c, &a, &b, d), want, "diag {d}");
        }
    }

    #[test]
    fn ties_consume_a_first() {
        let mut c = cta();
        let a = [7, 7];
        let b = [7, 7];
        // First two path steps must take both elements of a.
        assert_eq!(merge_path_search(&mut c, &a, &b, 1), 1);
        assert_eq!(merge_path_search(&mut c, &a, &b, 2), 2);
        assert_eq!(merge_path_search(&mut c, &a, &b, 3), 2);
    }

    #[test]
    fn one_empty_side() {
        let mut c = cta();
        let a: [u32; 0] = [];
        let b = [1, 2, 3];
        assert_eq!(merge_path_search(&mut c, &a, &b, 2), 0);
        assert_eq!(merge_path_search(&mut c, &b, &a, 2), 2);
    }

    #[test]
    fn partition_search_locates_enclosing_segment() {
        let mut c = cta();
        let offsets = [0usize, 3, 3, 7, 10];
        assert_eq!(binary_search_partition(&mut c, &offsets, 0), 0);
        assert_eq!(binary_search_partition(&mut c, &offsets, 2), 0);
        // value 3: rows 1 (empty) and 2 start at 3; last offset <= 3 wins.
        assert_eq!(binary_search_partition(&mut c, &offsets, 3), 2);
        assert_eq!(binary_search_partition(&mut c, &offsets, 9), 3);
        assert_eq!(binary_search_partition(&mut c, &offsets, 100), 4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn partition_search_rejects_empty() {
        let mut c = cta();
        binary_search_partition(&mut c, &[], 0);
    }

    #[test]
    fn load_balance_maps_items_to_segments() {
        let mut c = cta();
        // Segments of sizes [2, 0, 3, 1] → scan [0, 2, 2, 5, 6].
        let scan = [0usize, 2, 2, 5, 6];
        let mut seen = Vec::new();
        load_balance_search(&mut c, &scan, 0, 6, |item, seg, rank| {
            seen.push((item, seg, rank));
        });
        assert_eq!(
            seen,
            vec![
                (0, 0, 0),
                (1, 0, 1),
                (2, 2, 0), // empty segment 1 skipped
                (3, 2, 1),
                (4, 2, 2),
                (5, 3, 0),
            ]
        );
    }

    #[test]
    fn load_balance_partial_ranges_compose() {
        let mut c = cta();
        let scan = [0usize, 4, 4, 9, 12];
        let mut full = Vec::new();
        load_balance_search(&mut c, &scan, 0, 12, |i, s, r| full.push((i, s, r)));
        let mut parts = Vec::new();
        load_balance_search(&mut c, &scan, 0, 5, |i, s, r| parts.push((i, s, r)));
        load_balance_search(&mut c, &scan, 5, 12, |i, s, r| parts.push((i, s, r)));
        assert_eq!(full, parts);
    }

    #[test]
    fn load_balance_empty_range_is_noop() {
        let mut c = cta();
        load_balance_search(&mut c, &[0, 3], 2, 2, |_, _, _| panic!("no items"));
    }

    #[test]
    fn searches_charge_logarithmic_alu() {
        let mut c = cta();
        let offsets: Vec<usize> = (0..1024).collect();
        binary_search_partition(&mut c, &offsets, 500);
        assert!(c.counters().alu_ops <= 2 * 11);
    }
}
