//! Block-wide reduction.

use crate::cta::Cta;

use super::scan::Semigroup;

/// Reduce a CTA tile to a single aggregate. Cost: one combine per item plus
/// a shared round trip for warp aggregates and one barrier.
pub fn block_reduce<T: Semigroup>(cta: &mut Cta, tile: &[T]) -> T {
    cta.alu(tile.len() as u64);
    cta.shmem((tile.len() / cta.warp_size.max(1)) as u64 * 2);
    cta.sync();
    tile.iter().fold(T::identity(), |acc, &v| acc.combine(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_sums_tile() {
        let mut c = Cta::new(0, 1, 128, 32);
        let tile: Vec<u64> = (0..100).collect();
        assert_eq!(block_reduce(&mut c, &tile), 4950);
        assert_eq!(c.counters().alu_ops, 100);
        assert_eq!(c.counters().syncs, 1);
    }

    #[test]
    fn reduce_empty_tile_is_identity() {
        let mut c = Cta::new(0, 1, 128, 32);
        let tile: Vec<f64> = vec![];
        assert_eq!(block_reduce(&mut c, &tile), 0.0);
    }
}
