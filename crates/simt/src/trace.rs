//! Kernel tracing: a per-device log of every launch.
//!
//! Enable with [`crate::Device::with_tracing`]; every named launch appends
//! a [`KernelRecord`]. Each record carries a [`Phase`] label so composite
//! operations can be broken down the way the paper's figures are: SpMV's
//! partition/reduction/update, SpGEMM's symbolic/numeric phases, and so
//! on. The
//! per-kernel report is the `nvprof`-style breakdown used by `mps trace`;
//! [`Tracer::phase_report`] is the phase-attributed view.

use std::cell::Cell;
use std::sync::Arc;

use parking_lot::Mutex;

/// Which algorithmic phase a kernel launch belongs to.
///
/// The variants cover the phase taxonomy of all four core kernels plus the
/// solvers' BLAS-1 traffic; launches outside any span are
/// [`Phase::Unattributed`]. The SpGEMM variants cover the paper's six
/// Fig. 9 legend entries (Setup, Block Sort, Global Sort, Product
/// Compute, Product Reduce, Other) plus the two bin-adaptive numeric
/// passes of the symbolic/numeric split (Tiny Scatter, Mid Hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Launch outside any phase span.
    Unattributed,
    /// Merge-path / balanced-path partition searches.
    Partition,
    /// Empty-row compaction of the partition descriptor (SpMV's adaptive
    /// "slightly slower method").
    EmptyRowFixup,
    /// SpMV per-CTA segmented reduction.
    Reduction,
    /// SpMV carry fix-up pass.
    Update,
    /// Column-tiled SpMM traversal (reduce + update over each tile).
    TileTraversal,
    /// SpAdd COO key expansion.
    Expand,
    /// SpAdd balanced-path count pass.
    Count,
    /// SpAdd balanced-path fill pass.
    Fill,
    /// SpGEMM setup (expansion sizing).
    Setup,
    /// SpGEMM per-block sort.
    BlockSort,
    /// SpGEMM global radix sort + rank inversion.
    GlobalSort,
    /// SpGEMM product expansion.
    ProductCompute,
    /// SpGEMM duplicate reduction.
    ProductReduce,
    /// SpGEMM numeric pass over tiny-binned rows (dense-accumulator
    /// scatter, à la OpSparse's smallest bins).
    NumericTiny,
    /// SpGEMM numeric pass over mid-binned rows (hash-based reduction).
    NumericMid,
    /// SpGEMM remaining work (CSR assembly).
    Other,
    /// Solver BLAS-1 streaming ops (dot/axpy/norm and block variants).
    Blas1,
    /// CMRS strip-interleaved SpMV (row-split format zoo).
    CmrsStrip,
    /// SELL-C-σ sliced-ELL SpMV/SpMM (row-split format zoo).
    SellSlice,
}

impl Phase {
    /// Number of phase variants (ledger array size).
    pub const COUNT: usize = 20;

    /// All variants in ledger order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Unattributed,
        Phase::Partition,
        Phase::EmptyRowFixup,
        Phase::Reduction,
        Phase::Update,
        Phase::TileTraversal,
        Phase::Expand,
        Phase::Count,
        Phase::Fill,
        Phase::Setup,
        Phase::BlockSort,
        Phase::GlobalSort,
        Phase::ProductCompute,
        Phase::ProductReduce,
        Phase::NumericTiny,
        Phase::NumericMid,
        Phase::Other,
        Phase::Blas1,
        Phase::CmrsStrip,
        Phase::SellSlice,
    ];

    /// Stable index into [`Phase::ALL`]-ordered ledgers.
    pub fn index(self) -> usize {
        Phase::ALL.iter().position(|p| *p == self).expect("in ALL")
    }

    /// Human-readable label. The SpGEMM variants match the paper's Fig. 9
    /// legend verbatim.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Unattributed => "Unattributed",
            Phase::Partition => "Partition",
            Phase::EmptyRowFixup => "Empty-Row Fixup",
            Phase::Reduction => "Reduction",
            Phase::Update => "Update",
            Phase::TileTraversal => "Tile Traversal",
            Phase::Expand => "Expand",
            Phase::Count => "Count",
            Phase::Fill => "Fill",
            Phase::Setup => "Setup",
            Phase::BlockSort => "Block Sort",
            Phase::GlobalSort => "Global Sort",
            Phase::ProductCompute => "Product Compute",
            Phase::ProductReduce => "Product Reduce",
            Phase::NumericTiny => "Tiny Scatter",
            Phase::NumericMid => "Mid Hash",
            Phase::Other => "Other",
            Phase::Blas1 => "BLAS-1",
            Phase::CmrsStrip => "CMRS Strip",
            Phase::SellSlice => "SELL Slice",
        }
    }

    /// The phase currently in scope on this thread (set by
    /// [`with_phase`] / [`crate::Device::phase_scope`]).
    pub fn current() -> Phase {
        CURRENT_PHASE.with(|c| c.get())
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

thread_local! {
    static CURRENT_PHASE: Cell<Phase> = const { Cell::new(Phase::Unattributed) };
}

/// Run `f` with `phase` as this thread's current phase; launches recorded
/// inside the closure (via the `*_named` launchers) are attributed to it.
/// Scopes nest: the previous phase is restored on exit, including on
/// unwind. Each rayon worker has its own current phase, so launches issued
/// from concurrent host phases need either their own `with_phase` on that
/// thread or the explicit `*_phased` launchers.
pub fn with_phase<R>(phase: Phase, f: impl FnOnce() -> R) -> R {
    struct Restore(Phase);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_PHASE.with(|c| c.set(self.0));
        }
    }
    let prev = CURRENT_PHASE.with(|c| c.replace(phase));
    let _restore = Restore(prev);
    f()
}

/// One recorded kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    pub name: &'static str,
    pub phase: Phase,
    pub grid_dim: usize,
    pub block_dim: usize,
    pub makespan_cycles: u64,
    pub sim_ms: f64,
    pub dram_bytes: u64,
}

/// Per-phase accumulator: launches, simulated ms, and DRAM bytes for each
/// [`Phase`]. Used both by [`Tracer::phase_report`] and as the engine's
/// per-phase ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseLedger {
    launches: [u64; Phase::COUNT],
    sim_ms: [f64; Phase::COUNT],
    dram_bytes: [u64; Phase::COUNT],
}

impl Default for PhaseLedger {
    fn default() -> Self {
        PhaseLedger {
            launches: [0; Phase::COUNT],
            sim_ms: [0.0; Phase::COUNT],
            dram_bytes: [0; Phase::COUNT],
        }
    }
}

impl PhaseLedger {
    pub fn new() -> Self {
        PhaseLedger::default()
    }

    /// Charge one launch worth of time and traffic to `phase`.
    pub fn charge(&mut self, phase: Phase, sim_ms: f64, dram_bytes: u64) {
        let i = phase.index();
        self.launches[i] += 1;
        self.sim_ms[i] += sim_ms;
        self.dram_bytes[i] += dram_bytes;
    }

    /// Accumulate another ledger into this one.
    pub fn merge(&mut self, other: &PhaseLedger) {
        for i in 0..Phase::COUNT {
            self.launches[i] += other.launches[i];
            self.sim_ms[i] += other.sim_ms[i];
            self.dram_bytes[i] += other.dram_bytes[i];
        }
    }

    /// Total simulated milliseconds across all phases.
    pub fn total_ms(&self) -> f64 {
        self.sim_ms.iter().sum()
    }

    /// True when nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.launches.iter().all(|&n| n == 0)
    }

    /// Simulated milliseconds charged to one phase.
    pub fn phase_ms(&self, phase: Phase) -> f64 {
        self.sim_ms[phase.index()]
    }

    /// Non-empty entries in [`Phase::ALL`] order.
    pub fn entries(&self) -> Vec<PhaseEntry> {
        let total = self.total_ms().max(f64::MIN_POSITIVE);
        Phase::ALL
            .iter()
            .filter(|p| self.launches[p.index()] > 0)
            .map(|&p| {
                let i = p.index();
                PhaseEntry {
                    phase: p,
                    launches: self.launches[i],
                    sim_ms: self.sim_ms[i],
                    fraction: self.sim_ms[i] / total,
                    dram_gb: self.dram_bytes[i] as f64 / 1e9,
                }
            })
            .collect()
    }

    /// Render the phase table (header + one row per non-empty phase).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "phase                 launches     total ms   % of total      DRAM GB\n\
             ---------------------------------------------------------------------\n",
        );
        for e in self.entries() {
            out.push_str(&format!(
                "{:<20} {:>9} {:>12.4} {:>11.1}% {:>12.4}\n",
                e.phase.as_str(),
                e.launches,
                e.sim_ms,
                100.0 * e.fraction,
                e.dram_gb,
            ));
        }
        out
    }
}

/// One row of a [`PhaseReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseEntry {
    pub phase: Phase,
    pub launches: u64,
    pub sim_ms: f64,
    /// Share of the report's total simulated time in `[0, 1]`.
    pub fraction: f64,
    pub dram_gb: f64,
}

/// Phase-attributed aggregate of a tracer's records: per-phase totals,
/// fraction of total time, and DRAM GB. Invariant: the per-phase sim-time
/// entries sum to the tracer's [`Tracer::total_ms`] within 1e-9 (every
/// record carries exactly one phase).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseReport {
    pub ledger: PhaseLedger,
}

impl PhaseReport {
    /// Total simulated milliseconds across all phases.
    pub fn total_ms(&self) -> f64 {
        self.ledger.total_ms()
    }

    /// Non-empty phase rows in stable [`Phase::ALL`] order.
    pub fn entries(&self) -> Vec<PhaseEntry> {
        self.ledger.entries()
    }

    /// `(label, fraction)` per non-empty phase; fractions sum to 1 for a
    /// non-empty report.
    pub fn fractions(&self) -> Vec<(&'static str, f64)> {
        self.entries()
            .iter()
            .map(|e| (e.phase.as_str(), e.fraction))
            .collect()
    }

    /// Render the phase table.
    pub fn render(&self) -> String {
        self.ledger.render()
    }
}

/// Thread-safe launch log attached to a device.
#[derive(Debug, Default)]
pub struct Tracer {
    records: Mutex<Vec<KernelRecord>>,
}

impl Tracer {
    pub fn new() -> Arc<Self> {
        Arc::new(Tracer::default())
    }

    pub fn record(&self, record: KernelRecord) {
        self.records.lock().push(record);
    }

    /// Snapshot of all records in launch order.
    pub fn records(&self) -> Vec<KernelRecord> {
        self.records.lock().clone()
    }

    /// Drop all records.
    pub fn clear(&self) {
        self.records.lock().clear();
    }

    /// Total simulated milliseconds across all launches.
    pub fn total_ms(&self) -> f64 {
        self.records.lock().iter().map(|r| r.sim_ms).sum()
    }

    /// Aggregate by kernel name: (name, launches, total ms, total DRAM GB),
    /// sorted by descending time.
    pub fn by_kernel(&self) -> Vec<(&'static str, usize, f64, f64)> {
        let records = self.records.lock();
        let mut agg: Vec<(&'static str, usize, f64, f64)> = Vec::new();
        for r in records.iter() {
            match agg.iter_mut().find(|(n, ..)| *n == r.name) {
                Some(entry) => {
                    entry.1 += 1;
                    entry.2 += r.sim_ms;
                    entry.3 += r.dram_bytes as f64 / 1e9;
                }
                None => agg.push((r.name, 1, r.sim_ms, r.dram_bytes as f64 / 1e9)),
            }
        }
        agg.sort_by(|a, b| b.2.total_cmp(&a.2));
        agg
    }

    /// Aggregate by phase: (phase, launches, total ms, total DRAM GB), in
    /// [`Phase::ALL`] order, empty phases skipped.
    pub fn by_phase(&self) -> Vec<(Phase, usize, f64, f64)> {
        self.phase_report()
            .entries()
            .iter()
            .map(|e| (e.phase, e.launches as usize, e.sim_ms, e.dram_gb))
            .collect()
    }

    /// Phase-attributed aggregate of every record.
    pub fn phase_report(&self) -> PhaseReport {
        let records = self.records.lock();
        let mut ledger = PhaseLedger::new();
        for r in records.iter() {
            ledger.charge(r.phase, r.sim_ms, r.dram_bytes);
        }
        PhaseReport { ledger }
    }

    /// Render the aggregate table.
    pub fn report(&self) -> String {
        let mut out = String::from(
            "kernel                        launches     total ms      DRAM GB\n\
             -----------------------------------------------------------------\n",
        );
        for (name, launches, ms, gb) in self.by_kernel() {
            out.push_str(&format!("{name:<28} {launches:>9} {ms:>12.4} {gb:>12.4}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{launch_map_named, launch_map_phased, LaunchConfig};
    use crate::Device;
    use rayon::prelude::*;

    #[test]
    fn untraced_device_records_nothing() {
        let dev = Device::titan();
        assert!(dev.tracer.is_none());
        let (_, _) = launch_map_named(&dev, "probe", LaunchConfig::new(4, 32), |cta| cta.alu(1));
        // No tracer, nothing to check beyond not panicking.
    }

    #[test]
    fn traced_device_logs_every_launch() {
        let dev = Device::titan().with_tracing();
        let tracer = dev.tracer.as_ref().expect("tracing enabled").clone();
        launch_map_named(&dev, "alpha", LaunchConfig::new(4, 32), |cta| cta.alu(10));
        launch_map_named(&dev, "beta", LaunchConfig::new(2, 64), |cta| {
            cta.read_coalesced(100, 8)
        });
        launch_map_named(&dev, "alpha", LaunchConfig::new(8, 32), |cta| cta.alu(10));
        let records = tracer.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "alpha");
        assert_eq!(records[0].phase, Phase::Unattributed);
        assert_eq!(records[1].grid_dim, 2);
        assert!(records[1].dram_bytes >= 1600);

        let agg = tracer.by_kernel();
        assert_eq!(agg.len(), 2);
        let alpha = agg.iter().find(|(n, ..)| *n == "alpha").expect("present");
        assert_eq!(alpha.1, 2);
        assert!(tracer.total_ms() > 0.0);
    }

    #[test]
    fn report_lists_kernels() {
        let dev = Device::titan().with_tracing();
        launch_map_named(&dev, "gamma", LaunchConfig::new(1, 32), |cta| cta.alu(1));
        let report = dev.tracer.as_ref().expect("tracing").report();
        assert!(report.contains("gamma"));
        assert!(report.contains("launches"));
    }

    #[test]
    fn clear_resets_the_log() {
        let dev = Device::titan().with_tracing();
        launch_map_named(&dev, "delta", LaunchConfig::new(1, 32), |cta| cta.alu(1));
        let tracer = dev.tracer.as_ref().expect("tracing");
        assert_eq!(tracer.records().len(), 1);
        tracer.clear();
        assert!(tracer.records().is_empty());
    }

    #[test]
    fn phase_scope_attributes_launches_and_nests() {
        let dev = Device::titan().with_tracing();
        let tracer = dev.tracer.as_ref().expect("tracing").clone();
        dev.phase_scope(Phase::Partition, || {
            launch_map_named(&dev, "search", LaunchConfig::new(2, 32), |cta| cta.alu(5));
            dev.phase_scope(Phase::Reduction, || {
                launch_map_named(&dev, "reduce", LaunchConfig::new(2, 32), |cta| cta.alu(5));
            });
            // Inner scope restored the outer phase on exit.
            launch_map_named(&dev, "search2", LaunchConfig::new(2, 32), |cta| cta.alu(5));
        });
        launch_map_named(&dev, "free", LaunchConfig::new(1, 32), |cta| cta.alu(1));
        let phases: Vec<Phase> = tracer.records().iter().map(|r| r.phase).collect();
        assert_eq!(
            phases,
            vec![
                Phase::Partition,
                Phase::Reduction,
                Phase::Partition,
                Phase::Unattributed
            ]
        );
    }

    #[test]
    fn explicit_phase_overrides_the_scope() {
        let dev = Device::titan().with_tracing();
        let tracer = dev.tracer.as_ref().expect("tracing").clone();
        dev.phase_scope(Phase::Setup, || {
            launch_map_phased(&dev, "fill", Phase::Fill, LaunchConfig::new(1, 32), |cta| {
                cta.alu(1)
            });
        });
        assert_eq!(tracer.records()[0].phase, Phase::Fill);
    }

    #[test]
    fn concurrent_host_phases_do_not_interleave_records_incorrectly() {
        // Rayon host phases launch concurrently from many worker threads;
        // each explicit phased launch must land with its own phase label
        // and exactly one record, regardless of interleaving.
        let dev = Device::titan().with_tracing();
        let tracer = dev.tracer.as_ref().expect("tracing").clone();
        let phases = [
            Phase::Partition,
            Phase::Reduction,
            Phase::Update,
            Phase::Fill,
        ];
        (0..32usize).into_par_iter().for_each(|i| {
            let phase = phases[i % phases.len()];
            launch_map_phased(&dev, "worker", phase, LaunchConfig::new(1, 32), |cta| {
                cta.alu(1 + i as u64)
            });
        });
        let records = tracer.records();
        assert_eq!(records.len(), 32);
        for phase in phases {
            let n = records.iter().filter(|r| r.phase == phase).count();
            assert_eq!(n, 8, "phase {phase} must own exactly its launches");
        }
        // The thread-local scope is also per-thread under rayon: a scope
        // on one worker never leaks into another worker's launches.
        (0..16usize).into_par_iter().for_each(|i| {
            if i % 2 == 0 {
                dev.phase_scope(Phase::BlockSort, || {
                    launch_map_named(&dev, "even", LaunchConfig::new(1, 32), |cta| cta.alu(2));
                });
            } else {
                launch_map_named(&dev, "odd", LaunchConfig::new(1, 32), |cta| cta.alu(2));
            }
        });
        let records = tracer.records();
        for r in records.iter().filter(|r| r.name == "even") {
            assert_eq!(r.phase, Phase::BlockSort);
        }
        for r in records.iter().filter(|r| r.name == "odd") {
            assert_eq!(r.phase, Phase::Unattributed);
        }
    }

    #[test]
    fn phase_report_sums_to_total_ms() {
        let dev = Device::titan().with_tracing();
        let tracer = dev.tracer.as_ref().expect("tracing").clone();
        for (i, phase) in Phase::ALL.iter().enumerate() {
            launch_map_phased(
                &dev,
                "mix",
                *phase,
                LaunchConfig::new(i + 1, 32),
                move |cta| cta.alu(17 * (i as u64 + 1)),
            );
        }
        let report = tracer.phase_report();
        assert!((report.total_ms() - tracer.total_ms()).abs() < 1e-9);
        let frac_sum: f64 = report.fractions().iter().map(|(_, f)| f).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9, "fractions sum to {frac_sum}");
        assert_eq!(report.entries().len(), Phase::COUNT);
    }

    #[test]
    fn phase_report_is_stable_under_clear_and_rerun() {
        let dev = Device::titan().with_tracing();
        let tracer = dev.tracer.as_ref().expect("tracing").clone();
        let run = || {
            launch_map_phased(&dev, "a", Phase::Setup, LaunchConfig::new(3, 64), |cta| {
                cta.alu(100);
                cta.read_coalesced(64, 8);
            });
            launch_map_phased(&dev, "b", Phase::Other, LaunchConfig::new(2, 64), |cta| {
                cta.alu(50)
            });
        };
        run();
        let first = tracer.phase_report();
        tracer.clear();
        run();
        let second = tracer.phase_report();
        assert_eq!(first, second);
    }

    #[test]
    fn ledger_merge_and_render() {
        let mut a = PhaseLedger::new();
        assert!(a.is_empty());
        a.charge(Phase::Partition, 1.0, 1_000_000_000);
        let mut b = PhaseLedger::new();
        b.charge(Phase::Partition, 2.0, 0);
        b.charge(Phase::Update, 1.0, 0);
        a.merge(&b);
        assert!((a.total_ms() - 4.0).abs() < 1e-12);
        assert!((a.phase_ms(Phase::Partition) - 3.0).abs() < 1e-12);
        let table = a.render();
        assert!(table.contains("Partition"), "{table}");
        assert!(table.contains("75.0%"), "{table}");
        assert!(table.contains("Update"), "{table}");
    }
}
