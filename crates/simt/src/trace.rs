//! Kernel tracing: a per-device log of every launch.
//!
//! Enable with [`crate::Device::with_tracing`]; every named launch appends
//! a [`KernelRecord`]. The report aggregates by kernel name — the
//! `nvprof`-style breakdown used by `repro trace` to show where a composite
//! operation's simulated time goes.

use std::sync::Arc;

use parking_lot::Mutex;

/// One recorded kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    pub name: &'static str,
    pub grid_dim: usize,
    pub block_dim: usize,
    pub makespan_cycles: u64,
    pub sim_ms: f64,
    pub dram_bytes: u64,
}

/// Thread-safe launch log attached to a device.
#[derive(Debug, Default)]
pub struct Tracer {
    records: Mutex<Vec<KernelRecord>>,
}

impl Tracer {
    pub fn new() -> Arc<Self> {
        Arc::new(Tracer::default())
    }

    pub fn record(&self, record: KernelRecord) {
        self.records.lock().push(record);
    }

    /// Snapshot of all records in launch order.
    pub fn records(&self) -> Vec<KernelRecord> {
        self.records.lock().clone()
    }

    /// Drop all records.
    pub fn clear(&self) {
        self.records.lock().clear();
    }

    /// Total simulated milliseconds across all launches.
    pub fn total_ms(&self) -> f64 {
        self.records.lock().iter().map(|r| r.sim_ms).sum()
    }

    /// Aggregate by kernel name: (name, launches, total ms, total DRAM GB),
    /// sorted by descending time.
    pub fn by_kernel(&self) -> Vec<(&'static str, usize, f64, f64)> {
        let records = self.records.lock();
        let mut agg: Vec<(&'static str, usize, f64, f64)> = Vec::new();
        for r in records.iter() {
            match agg.iter_mut().find(|(n, ..)| *n == r.name) {
                Some(entry) => {
                    entry.1 += 1;
                    entry.2 += r.sim_ms;
                    entry.3 += r.dram_bytes as f64 / 1e9;
                }
                None => agg.push((r.name, 1, r.sim_ms, r.dram_bytes as f64 / 1e9)),
            }
        }
        agg.sort_by(|a, b| b.2.total_cmp(&a.2));
        agg
    }

    /// Render the aggregate table.
    pub fn report(&self) -> String {
        let mut out = String::from(
            "kernel                        launches     total ms      DRAM GB\n\
             -----------------------------------------------------------------\n",
        );
        for (name, launches, ms, gb) in self.by_kernel() {
            out.push_str(&format!("{name:<28} {launches:>9} {ms:>12.4} {gb:>12.4}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {

    use crate::grid::{launch_map_named, LaunchConfig};
    use crate::Device;

    #[test]
    fn untraced_device_records_nothing() {
        let dev = Device::titan();
        assert!(dev.tracer.is_none());
        let (_, _) = launch_map_named(&dev, "probe", LaunchConfig::new(4, 32), |cta| cta.alu(1));
        // No tracer, nothing to check beyond not panicking.
    }

    #[test]
    fn traced_device_logs_every_launch() {
        let dev = Device::titan().with_tracing();
        let tracer = dev.tracer.as_ref().expect("tracing enabled").clone();
        launch_map_named(&dev, "alpha", LaunchConfig::new(4, 32), |cta| cta.alu(10));
        launch_map_named(&dev, "beta", LaunchConfig::new(2, 64), |cta| {
            cta.read_coalesced(100, 8)
        });
        launch_map_named(&dev, "alpha", LaunchConfig::new(8, 32), |cta| cta.alu(10));
        let records = tracer.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "alpha");
        assert_eq!(records[1].grid_dim, 2);
        assert!(records[1].dram_bytes >= 1600);

        let agg = tracer.by_kernel();
        assert_eq!(agg.len(), 2);
        let alpha = agg.iter().find(|(n, ..)| *n == "alpha").expect("present");
        assert_eq!(alpha.1, 2);
        assert!(tracer.total_ms() > 0.0);
    }

    #[test]
    fn report_lists_kernels() {
        let dev = Device::titan().with_tracing();
        launch_map_named(&dev, "gamma", LaunchConfig::new(1, 32), |cta| cta.alu(1));
        let report = dev.tracer.as_ref().expect("tracing").report();
        assert!(report.contains("gamma"));
        assert!(report.contains("launches"));
    }

    #[test]
    fn clear_resets_the_log() {
        let dev = Device::titan().with_tracing();
        launch_map_named(&dev, "delta", LaunchConfig::new(1, 32), |cta| cta.alu(1));
        let tracer = dev.tracer.as_ref().expect("tracing");
        assert_eq!(tracer.records().len(), 1);
        tracer.clear();
        assert!(tracer.records().is_empty());
    }
}
