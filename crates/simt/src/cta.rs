//! Per-CTA execution context.
//!
//! A [`Cta`] is handed to the kernel body for every block in the grid. It
//! identifies the block, exposes the device's geometry, and provides the
//! *memory accounting* interface: kernels call `read_*`/`write_*`/`gather`
//! to declare their global-memory traffic, and `alu`/`shmem`/`sync` for
//! on-chip work. Semantically the kernel body is ordinary Rust operating on
//! host slices — the Cta only records what the access pattern would have
//! cost on the virtual device.

use std::cell::RefCell;

use crate::cost::{coalesced_transactions, Counters, TX_BYTES};

thread_local! {
    /// Reusable per-thread scratch for the warp-segment sets built by the
    /// gather/scatter coalescing model. Launch bodies run many gathers per
    /// CTA; allocating the scratch per call made the gather paths the only
    /// allocating part of a warm launch. One vector per executing thread
    /// (launches never nest a gather inside a gather) keeps the hot path
    /// allocation-free after the first use on each worker.
    static WARP_SEGMENTS: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Execution context for a single cooperative thread array.
#[derive(Debug)]
pub struct Cta {
    /// Block index within the grid.
    pub cta_id: usize,
    /// Number of blocks in the grid.
    pub grid_dim: usize,
    /// Threads per block.
    pub threads: usize,
    /// Warp width of the device.
    pub warp_size: usize,
    counters: Counters,
}

impl Cta {
    pub fn new(cta_id: usize, grid_dim: usize, threads: usize, warp_size: usize) -> Self {
        Cta {
            cta_id,
            grid_dim,
            threads,
            warp_size,
            counters: Counters::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Take the accumulated counters (used by the launcher).
    pub(crate) fn into_counters(self) -> Counters {
        self.counters
    }

    // ---- on-chip cost charging -------------------------------------------------

    /// Charge `n` arithmetic thread-operations.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.counters.alu_ops += n;
    }

    /// Charge `n` shared-memory accesses.
    #[inline]
    pub fn shmem(&mut self, n: u64) {
        self.counters.shmem_ops += n;
    }

    /// Charge one block-wide barrier.
    #[inline]
    pub fn sync(&mut self) {
        self.counters.syncs += 1;
    }

    // ---- global memory accounting ----------------------------------------------

    /// Charge a perfectly coalesced read of `count` elements of `elem_bytes`
    /// bytes each (e.g. a strided tile load of consecutive values).
    pub fn read_coalesced(&mut self, count: usize, elem_bytes: usize) {
        let bytes = (count * elem_bytes) as u64;
        self.counters.dram_read_bytes += bytes;
        self.counters.dram_transactions += coalesced_transactions(bytes);
    }

    /// Charge a perfectly coalesced write of `count` elements.
    pub fn write_coalesced(&mut self, count: usize, elem_bytes: usize) {
        let bytes = (count * elem_bytes) as u64;
        self.counters.dram_write_bytes += bytes;
        self.counters.dram_transactions += coalesced_transactions(bytes);
    }

    /// Charge a data-dependent gather: `indices` are *element* indices into
    /// an array of `elem_bytes`-sized elements. Transactions are counted per
    /// warp as the number of distinct 128-byte segments the warp touches —
    /// the standard coalescing model. Consecutive indices therefore cost the
    /// same as `read_coalesced`; scattered indices cost up to one
    /// transaction per lane.
    pub fn gather<I>(&mut self, indices: I, elem_bytes: usize)
    where
        I: IntoIterator<Item = usize>,
    {
        let tx = self.access_transactions(indices, elem_bytes);
        self.counters.dram_transactions += tx.0;
        self.counters.dram_read_bytes += tx.1;
    }

    /// Charge a data-dependent scatter (same coalescing model as [`gather`]).
    ///
    /// [`gather`]: Cta::gather
    pub fn scatter<I>(&mut self, indices: I, elem_bytes: usize)
    where
        I: IntoIterator<Item = usize>,
    {
        let tx = self.access_transactions(indices, elem_bytes);
        self.counters.dram_transactions += tx.0;
        self.counters.dram_write_bytes += tx.1;
    }

    /// Charge a *wide* data-dependent gather: each index names the first of
    /// `width` consecutive elements (a row of a row-major dense column
    /// tile), and the lane loads the whole run. Transactions are counted per
    /// warp as the distinct 128-byte segments the union of the runs touches,
    /// so one `width`-wide gather is priced far below `width` independent
    /// narrow gathers of the same indices — the coalescing advantage tiled
    /// multi-vector kernels exist to exploit. The payload also accrues to
    /// the [`Counters::dram_wide_bytes`] counter.
    pub fn gather_wide<I>(&mut self, indices: I, elem_bytes: usize, width: usize)
    where
        I: IntoIterator<Item = usize>,
    {
        let tx = self.wide_access_transactions(indices, elem_bytes, width);
        self.counters.dram_transactions += tx.0;
        self.counters.dram_read_bytes += tx.1;
        self.counters.dram_wide_bytes += tx.1;
    }

    /// Charge a wide data-dependent scatter (same model as [`gather_wide`]).
    ///
    /// [`gather_wide`]: Cta::gather_wide
    pub fn scatter_wide<I>(&mut self, indices: I, elem_bytes: usize, width: usize)
    where
        I: IntoIterator<Item = usize>,
    {
        let tx = self.wide_access_transactions(indices, elem_bytes, width);
        self.counters.dram_transactions += tx.0;
        self.counters.dram_write_bytes += tx.1;
        self.counters.dram_wide_bytes += tx.1;
    }

    /// Returns (transactions, payload bytes) for an indexed access pattern.
    fn access_transactions<I>(&mut self, indices: I, elem_bytes: usize) -> (u64, u64)
    where
        I: IntoIterator<Item = usize>,
    {
        let per_tx = (TX_BYTES as usize / elem_bytes).max(1);
        let mut transactions = 0u64;
        let mut n = 0u64;
        // Distinct segments per warp: lanes of one warp coalesce, different
        // warps issue independently.
        WARP_SEGMENTS.with(|scratch| {
            let mut warp_segments = scratch.borrow_mut();
            warp_segments.clear();
            let mut lane = 0;
            for idx in indices {
                n += 1;
                warp_segments.push(idx / per_tx);
                lane += 1;
                if lane == self.warp_size {
                    transactions += distinct_count(&mut warp_segments);
                    warp_segments.clear();
                    lane = 0;
                }
            }
            if !warp_segments.is_empty() {
                transactions += distinct_count(&mut warp_segments);
            }
        });
        (transactions, n * elem_bytes as u64)
    }

    /// Returns (transactions, payload bytes) for a wide indexed access:
    /// every index pulls `width` consecutive elements, and a warp coalesces
    /// over the union of all its lanes' runs.
    fn wide_access_transactions<I>(
        &mut self,
        indices: I,
        elem_bytes: usize,
        width: usize,
    ) -> (u64, u64)
    where
        I: IntoIterator<Item = usize>,
    {
        let width = width.max(1);
        let per_tx = (TX_BYTES as usize / elem_bytes).max(1);
        let mut transactions = 0u64;
        let mut n = 0u64;
        WARP_SEGMENTS.with(|scratch| {
            let mut warp_segments = scratch.borrow_mut();
            warp_segments.clear();
            let mut lane = 0;
            for idx in indices {
                n += 1;
                // Segments spanned by elements [idx, idx + width).
                let first = idx / per_tx;
                let last = (idx + width - 1) / per_tx;
                warp_segments.extend(first..=last);
                lane += 1;
                if lane == self.warp_size {
                    transactions += distinct_count(&mut warp_segments);
                    warp_segments.clear();
                    lane = 0;
                }
            }
            if !warp_segments.is_empty() {
                transactions += distinct_count(&mut warp_segments);
            }
        });
        (transactions, n * width as u64 * elem_bytes as u64)
    }
}

/// Count distinct values in a small scratch vector (sorts in place).
fn distinct_count(v: &mut [usize]) -> u64 {
    v.sort_unstable();
    let mut count = 0u64;
    let mut prev = usize::MAX;
    for &s in v.iter() {
        if s != prev {
            count += 1;
            prev = s;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cta() -> Cta {
        Cta::new(0, 1, 128, 32)
    }

    #[test]
    fn coalesced_read_counts_payload_and_segments() {
        let mut c = cta();
        c.read_coalesced(32, 4); // 128 bytes = 1 transaction
        assert_eq!(c.counters().dram_transactions, 1);
        assert_eq!(c.counters().dram_read_bytes, 128);
    }

    #[test]
    fn contiguous_gather_is_coalesced() {
        let mut c = cta();
        c.gather(0..32usize, 4); // one warp, one 128B segment
        assert_eq!(c.counters().dram_transactions, 1);
    }

    #[test]
    fn strided_gather_pays_one_transaction_per_lane() {
        let mut c = cta();
        // Stride of 32 elements × 4B = every lane in its own segment.
        c.gather((0..32usize).map(|i| i * 32), 4);
        assert_eq!(c.counters().dram_transactions, 32);
    }

    #[test]
    fn gather_of_eight_byte_elems_halves_elems_per_segment() {
        let mut c = cta();
        c.gather(0..32usize, 8); // 256 bytes over one warp = 2 segments
        assert_eq!(c.counters().dram_transactions, 2);
        assert_eq!(c.counters().dram_read_bytes, 256);
    }

    #[test]
    fn partial_warp_still_counted() {
        let mut c = cta();
        c.gather(0..5usize, 4);
        assert_eq!(c.counters().dram_transactions, 1);
        assert_eq!(c.counters().dram_read_bytes, 20);
    }

    #[test]
    fn repeated_index_in_warp_coalesces_to_one_segment() {
        let mut c = cta();
        c.gather(std::iter::repeat_n(7usize, 32), 4);
        assert_eq!(c.counters().dram_transactions, 1);
    }

    #[test]
    fn wide_gather_of_width_one_matches_narrow_gather() {
        let mut narrow = cta();
        narrow.gather((0..32usize).map(|i| i * 16), 8);
        let mut wide = cta();
        wide.gather_wide((0..32usize).map(|i| i * 16), 8, 1);
        assert_eq!(
            narrow.counters().dram_transactions,
            wide.counters().dram_transactions
        );
        assert_eq!(
            narrow.counters().dram_read_bytes,
            wide.counters().dram_read_bytes
        );
        assert_eq!(wide.counters().dram_wide_bytes, 32 * 8);
    }

    #[test]
    fn wide_gather_is_cheaper_than_repeated_narrow_gathers() {
        // 16 scattered dense rows of width 16 (a column tile): one wide
        // gather per row vs 16 narrow gathers of the same rows.
        let k = 16usize;
        let rows: Vec<usize> = (0..16).map(|i| i * 331).collect();
        let mut wide = cta();
        wide.gather_wide(rows.iter().map(|r| r * k), 8, k);
        let mut narrow = cta();
        for j in 0..k {
            narrow.gather(rows.iter().map(|r| r * k + j), 8);
        }
        assert_eq!(
            wide.counters().dram_read_bytes,
            narrow.counters().dram_read_bytes,
            "same payload either way"
        );
        assert!(
            wide.counters().dram_transactions < narrow.counters().dram_transactions / 4,
            "wide {} vs narrow {}",
            wide.counters().dram_transactions,
            narrow.counters().dram_transactions
        );
        assert_eq!(narrow.counters().dram_wide_bytes, 0);
        assert!(wide.counters().dram_wide_bytes > 0);
    }

    #[test]
    fn wide_scatter_spans_run_segments() {
        let mut c = cta();
        // One lane writing 32 consecutive f64s = 256 bytes = 2 segments.
        c.scatter_wide(std::iter::once(0usize), 8, 32);
        assert_eq!(c.counters().dram_transactions, 2);
        assert_eq!(c.counters().dram_write_bytes, 256);
        assert_eq!(c.counters().dram_wide_bytes, 256);
    }

    #[test]
    fn on_chip_charges_accumulate() {
        let mut c = cta();
        c.alu(10);
        c.shmem(20);
        c.sync();
        c.sync();
        let k = c.counters();
        assert_eq!((k.alu_ops, k.shmem_ops, k.syncs), (10, 20, 2));
    }
}
