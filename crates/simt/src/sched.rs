//! Wave scheduler: maps per-CTA cycle counts to a kernel makespan.
//!
//! Hardware dispatches CTAs greedily to SMs as resident slots free up. We
//! model each SM as `max_ctas_per_sm` independent slots and assign CTAs in
//! issue order to the earliest-finishing slot. The kernel's simulated cycle
//! count is the latest slot finish time — so a single long-running CTA (one
//! monstrous row in a row-wise decomposition) stretches the whole kernel,
//! which is precisely the imbalance pathology the paper's flat
//! decompositions eliminate.

use std::cell::RefCell;

use crate::device::DeviceProps;

thread_local! {
    /// Reusable slot heap: `makespan` runs once per launch on the host hot
    /// path, and a per-call `BinaryHeap` allocation was the last allocating
    /// step of a warm launch.
    static SLOT_HEAP: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Restore the min-heap property for the root of `heap` (sift-down).
fn sift_down(heap: &mut [u64]) {
    let n = heap.len();
    let mut i = 0;
    loop {
        let l = 2 * i + 1;
        if l >= n {
            break;
        }
        let r = l + 1;
        let smallest = if r < n && heap[r] < heap[l] { r } else { l };
        if heap[smallest] >= heap[i] {
            break;
        }
        heap.swap(i, smallest);
        i = smallest;
    }
}

/// Greedy list-scheduling makespan of `per_cta_cycles` on the device.
///
/// Returns total kernel cycles. An empty grid costs nothing. CTAs are
/// assigned in issue order to the earliest-free slot; tied slots are
/// interchangeable (all carry the same free time), so the result does not
/// depend on which one the heap surfaces.
pub fn makespan(props: &DeviceProps, per_cta_cycles: &[u64]) -> u64 {
    let slots = (props.num_sms * props.max_ctas_per_sm).max(1);
    if per_cta_cycles.is_empty() {
        return 0;
    }
    SLOT_HEAP.with(|scratch| {
        let mut heap = scratch.borrow_mut();
        heap.clear();
        heap.resize(slots, 0u64);
        for &cycles in per_cta_cycles {
            // Pop-min + push == bump the root and restore the heap.
            heap[0] += cycles;
            sift_down(&mut heap);
        }
        heap.iter().copied().max().unwrap_or(0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_device(slots: usize) -> DeviceProps {
        DeviceProps {
            num_sms: slots,
            max_ctas_per_sm: 1,
            ..DeviceProps::gtx_titan()
        }
    }

    #[test]
    fn empty_grid_is_free() {
        assert_eq!(makespan(&small_device(4), &[]), 0);
    }

    #[test]
    fn single_cta_costs_its_own_cycles() {
        assert_eq!(makespan(&small_device(4), &[123]), 123);
    }

    #[test]
    fn balanced_ctas_divide_evenly_across_slots() {
        // 8 CTAs of 10 cycles on 4 slots → 2 waves → 20 cycles.
        let cycles = vec![10u64; 8];
        assert_eq!(makespan(&small_device(4), &cycles), 20);
    }

    #[test]
    fn one_giant_cta_dominates_makespan() {
        // The imbalance pathology: total work 13 but makespan 10.
        let cycles = vec![10, 1, 1, 1];
        assert_eq!(makespan(&small_device(4), &cycles), 10);
    }

    #[test]
    fn issue_order_greedy_matches_hand_schedule() {
        // 2 slots, CTAs [4,3,2,1]: slot A gets 4, slot B gets 3, then B (free
        // at 3) gets 2 → 5, then A (free at 4) gets 1 → 5. Makespan 5.
        let cycles = vec![4, 3, 2, 1];
        assert_eq!(makespan(&small_device(2), &cycles), 5);
    }

    #[test]
    fn makespan_at_least_mean_load_and_at_most_serial() {
        let cycles: Vec<u64> = (1..100).collect();
        let m = makespan(&small_device(7), &cycles);
        let total: u64 = cycles.iter().sum();
        assert!(m >= total / 7);
        assert!(m <= total);
    }
}
