//! Virtual device description.
//!
//! The default device is modeled on the GTX Titan used in the paper
//! (Table I): 14 SMX units at 0.88 GHz with ~288 GB/s of DRAM bandwidth and
//! ECC disabled. Only aggregate throughput numbers enter the cost model, so
//! the description is deliberately small.

use std::sync::Arc;

use crate::cost::CostModel;
use crate::trace::Tracer;

/// Static properties of a virtual SIMT device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProps {
    /// Human-readable name, reported by the benchmark harness (Table I).
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Threads per warp; all block primitives assume this SIMD width.
    pub warp_size: usize,
    /// Maximum CTAs resident on one SM (occupancy bound used by the
    /// wave scheduler).
    pub max_ctas_per_sm: usize,
    /// Core clock in GHz; converts cycles to simulated time.
    pub clock_ghz: f64,
    /// Aggregate DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// Shared memory per SM in bytes (bounds tile sizes).
    pub shared_mem_per_sm: usize,
}

impl DeviceProps {
    /// The GTX-Titan-like configuration from Table I of the paper.
    pub fn gtx_titan() -> Self {
        DeviceProps {
            name: "Virtual GTX Titan (simulated)",
            num_sms: 14,
            warp_size: 32,
            // Shared-memory-heavy sparse kernels rarely reach full
            // occupancy; four resident CTAs per SMX matches Kepler-era
            // profiles of CUB/ModernGPU tile kernels.
            max_ctas_per_sm: 4,
            clock_ghz: 0.88,
            dram_bandwidth_gbps: 288.0,
            shared_mem_per_sm: 48 * 1024,
        }
    }

    /// Kepler GTX 680 (consumer-class, fewer SMs, less bandwidth).
    pub fn gtx_680() -> Self {
        DeviceProps {
            name: "Virtual GTX 680 (simulated)",
            num_sms: 8,
            warp_size: 32,
            max_ctas_per_sm: 4,
            clock_ghz: 1.006,
            dram_bandwidth_gbps: 192.0,
            shared_mem_per_sm: 48 * 1024,
        }
    }

    /// Tesla K20 (compute-class Kepler).
    pub fn k20() -> Self {
        DeviceProps {
            name: "Virtual Tesla K20 (simulated)",
            num_sms: 13,
            warp_size: 32,
            max_ctas_per_sm: 4,
            clock_ghz: 0.706,
            dram_bandwidth_gbps: 208.0,
            shared_mem_per_sm: 48 * 1024,
        }
    }

    /// Maxwell Titan X (the generation after the paper's testbed).
    pub fn titan_x_maxwell() -> Self {
        DeviceProps {
            name: "Virtual Titan X / Maxwell (simulated)",
            num_sms: 24,
            warp_size: 32,
            max_ctas_per_sm: 6,
            clock_ghz: 1.0,
            dram_bandwidth_gbps: 336.0,
            shared_mem_per_sm: 96 * 1024,
        }
    }

    /// DRAM bytes one SM can consume per core cycle, assuming bandwidth is
    /// shared evenly. This is the constant that turns transaction counts
    /// into memory cycles.
    pub fn bytes_per_cycle_per_sm(&self) -> f64 {
        self.dram_bandwidth_gbps / (self.clock_ghz * self.num_sms as f64)
    }
}

impl Default for DeviceProps {
    fn default() -> Self {
        Self::gtx_titan()
    }
}

/// A device instance: properties plus the derived cost model and an
/// optional kernel tracer.
#[derive(Debug, Clone, Default)]
pub struct Device {
    pub props: DeviceProps,
    pub cost: CostModel,
    /// Launch log, present when tracing is enabled.
    pub tracer: Option<Arc<Tracer>>,
}

impl Device {
    pub fn new(props: DeviceProps) -> Self {
        let cost = CostModel::for_props(&props);
        Device {
            props,
            cost,
            tracer: None,
        }
    }

    /// Enable kernel tracing: every launch appends to `self.tracer`.
    pub fn with_tracing(mut self) -> Self {
        self.tracer = Some(Tracer::new());
        self
    }

    /// GTX-Titan-like virtual device (the configuration every experiment
    /// in this repository uses unless stated otherwise).
    pub fn titan() -> Self {
        Self::new(DeviceProps::gtx_titan())
    }

    /// All preset devices, for sensitivity sweeps.
    pub fn presets() -> Vec<Device> {
        vec![
            Self::new(DeviceProps::gtx_680()),
            Self::new(DeviceProps::k20()),
            Self::new(DeviceProps::gtx_titan()),
            Self::new(DeviceProps::titan_x_maxwell()),
        ]
    }

    /// Convert a cycle count into simulated milliseconds.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.props.clock_ghz * 1e9) * 1e3
    }

    /// Run `f` with `phase` as the calling thread's current phase span:
    /// launches issued inside the closure through the `*_named` launchers
    /// are attributed to `phase` in the trace. Scopes nest and restore the
    /// previous phase on exit. The span is per-thread — launches issued
    /// from rayon workers inside `f` should use the explicit `*_phased`
    /// launchers instead.
    pub fn phase_scope<R>(&self, phase: crate::trace::Phase, f: impl FnOnce() -> R) -> R {
        crate::trace::with_phase(phase, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_props_match_table_one() {
        let d = DeviceProps::gtx_titan();
        assert_eq!(d.num_sms, 14);
        assert_eq!(d.warp_size, 32);
        assert!((d.clock_ghz - 0.88).abs() < 1e-12);
    }

    #[test]
    fn bytes_per_cycle_is_bandwidth_split_across_sms() {
        let d = DeviceProps::gtx_titan();
        let b = d.bytes_per_cycle_per_sm();
        // 288 / (0.88 * 14) ≈ 23.38 bytes per cycle per SM.
        assert!(b > 20.0 && b < 28.0, "unexpected {b}");
    }

    #[test]
    fn presets_are_distinct_and_ordered_by_bandwidth() {
        let presets = Device::presets();
        assert_eq!(presets.len(), 4);
        let bw: Vec<f64> = presets
            .iter()
            .map(|d| d.props.dram_bandwidth_gbps)
            .collect();
        assert!(bw.windows(2).all(|w| w[0] < w[1]), "{bw:?}");
        let names: std::collections::HashSet<&str> = presets.iter().map(|d| d.props.name).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn cycles_to_ms_round_trip() {
        let dev = Device::titan();
        // 0.88e9 cycles is exactly one second = 1000 ms.
        let ms = dev.cycles_to_ms(880_000_000);
        assert!((ms - 1000.0).abs() < 1e-9);
    }
}
