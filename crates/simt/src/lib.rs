//! # mps-simt — a virtual SIMT device
//!
//! This crate is the hardware substrate for the merge-path sparse kernel
//! reproduction. The original paper ran on a GTX Titan under CUDA 6.5; this
//! crate replaces the GPU with a *virtual* SIMT device that preserves the
//! properties the paper's evaluation depends on:
//!
//! * a **grid / CTA / warp / thread** execution hierarchy — kernels are
//!   written as per-CTA routines over "register tiles" (arrays indexed by
//!   thread id × items-per-thread), exactly the way CUB/ModernGPU kernels
//!   are structured;
//! * **block-wide primitives** (scan, segmented scan, reduction, radix sort,
//!   merge, strided↔blocked exchange) whose semantics are implemented in
//!   plain safe Rust and whose *costs* are charged to a per-CTA counter set;
//! * a **cost model** translating counters (DRAM transactions under a
//!   coalescing model, shared-memory ops, ALU ops, barriers) into per-CTA
//!   cycle estimates;
//! * a **wave scheduler** that assigns CTAs to streaming multiprocessors and
//!   reports the simulated kernel time. Load imbalance between CTAs — the
//!   central subject of the paper — shows up in the makespan exactly as it
//!   does on hardware.
//!
//! CTAs of a grid execute in parallel on the host via rayon; results are
//! deterministic because CTAs are independent and reductions over their
//! outputs are performed in CTA order.

pub mod block;
pub mod cost;
pub mod cta;
pub mod device;
pub mod grid;
pub mod sched;
pub mod trace;
pub mod warp;

pub use cost::{CostModel, Counters, SpmvWorkload};
pub use cta::Cta;
pub use device::{Device, DeviceProps};
pub use grid::{
    launch_map, launch_map_into, launch_map_into_phased, launch_map_named, launch_map_phased,
    LaunchBuffers, LaunchConfig, LaunchStats,
};
pub use trace::{with_phase, KernelRecord, Phase, PhaseEntry, PhaseLedger, PhaseReport, Tracer};
