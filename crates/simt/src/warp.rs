//! Warp-level cooperative primitives.
//!
//! Semantics operate on a `warp_size`-long slice of lane values; costs are
//! charged on the [`Cta`]. Shuffle-based scans/reductions take `log2(warp)`
//! steps, each one ALU op per lane — the standard Kepler-era cost.

use crate::cta::Cta;

/// Inclusive prefix sum across one warp's lanes (in place).
pub fn warp_inclusive_scan(cta: &mut Cta, lanes: &mut [f64]) {
    let w = lanes.len();
    let steps = (w.max(1) as f64).log2().ceil() as u64;
    cta.alu(steps * w as u64);
    let mut acc = 0.0;
    for v in lanes.iter_mut() {
        acc += *v;
        *v = acc;
    }
}

/// Sum-reduction across one warp's lanes.
pub fn warp_reduce(cta: &mut Cta, lanes: &[f64]) -> f64 {
    let w = lanes.len();
    let steps = (w.max(1) as f64).log2().ceil() as u64;
    cta.alu(steps * w as u64);
    lanes.iter().sum()
}

/// Ballot: count of lanes with a set predicate (one ALU op per lane).
pub fn warp_ballot_count(cta: &mut Cta, predicates: &[bool]) -> usize {
    cta.alu(predicates.len() as u64);
    predicates.iter().filter(|&&p| p).count()
}

/// Serialized execution cost of a divergent warp: the warp pays for its
/// slowest lane on every step, so `warp_size * max(lane_work)` thread-ops.
/// Returns the charged op count (used by row-per-thread baselines, where
/// row-length variance inside a warp is the entire performance story).
pub fn warp_divergent_cost(cta: &mut Cta, lane_work: &[u64]) -> u64 {
    let max = lane_work.iter().copied().max().unwrap_or(0);
    let charged = max * lane_work.len() as u64;
    cta.alu(charged);
    charged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cta() -> Cta {
        Cta::new(0, 1, 128, 32)
    }

    #[test]
    fn inclusive_scan_semantics() {
        let mut c = cta();
        let mut lanes = vec![1.0; 8];
        warp_inclusive_scan(&mut c, &mut lanes);
        assert_eq!(lanes, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(c.counters().alu_ops, 3 * 8); // log2(8) steps × 8 lanes
    }

    #[test]
    fn reduce_sums_lanes() {
        let mut c = cta();
        let lanes: Vec<f64> = (1..=32).map(f64::from).collect();
        assert_eq!(warp_reduce(&mut c, &lanes), 528.0);
        assert_eq!(c.counters().alu_ops, 5 * 32);
    }

    #[test]
    fn ballot_counts_true_lanes() {
        let mut c = cta();
        let preds = [true, false, true, true];
        assert_eq!(warp_ballot_count(&mut c, &preds), 3);
    }

    #[test]
    fn divergence_charges_max_lane_times_width() {
        let mut c = cta();
        let charged = warp_divergent_cost(&mut c, &[1, 2, 100, 3]);
        assert_eq!(charged, 400);
        assert_eq!(c.counters().alu_ops, 400);
    }

    #[test]
    fn empty_lane_work_is_free() {
        let mut c = cta();
        assert_eq!(warp_divergent_cost(&mut c, &[]), 0);
    }
}
