//! Cost counters and the cycle model.
//!
//! Every CTA accumulates a [`Counters`] record while it runs. Primitives in
//! [`crate::block`] and memory helpers on [`crate::Cta`] charge these
//! counters; the [`CostModel`] then turns one CTA's counters into a cycle
//! estimate:
//!
//! ```text
//! compute = (alu_ops / warp_size) * issue_cpi  +  shmem_ops / shmem_lanes
//! memory  = dram_transactions * tx_bytes / bytes_per_cycle_per_sm
//! cycles  = max(compute, memory) + syncs * sync_cost + launch_overhead
//! ```
//!
//! The `max` models latency hiding: a memory-bound CTA overlaps its compute
//! with outstanding loads (the device is throughput-oriented, Garland &
//! Kirk 2010). Barriers and launch overhead are additive because nothing
//! overlaps them.

use crate::device::DeviceProps;

/// Size in bytes of one DRAM transaction (a coalesced 128-byte segment).
pub const TX_BYTES: u64 = 128;

/// Per-CTA event counters. All counts are totals over the CTA's threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Bytes read from global memory (useful payload).
    pub dram_read_bytes: u64,
    /// Bytes written to global memory (useful payload).
    pub dram_write_bytes: u64,
    /// 128-byte DRAM transactions issued (≥ payload/128 when uncoalesced).
    pub dram_transactions: u64,
    /// Payload bytes moved by *wide* accesses (each lane touching a run of
    /// consecutive elements, e.g. a dense column-tile row). Subset of the
    /// read/write byte totals; tracked separately so tiled multi-vector
    /// kernels are priced distinctly from repeated narrow gathers.
    pub dram_wide_bytes: u64,
    /// Shared-memory accesses (one per thread per load/store).
    pub shmem_ops: u64,
    /// Arithmetic/logic thread-operations.
    pub alu_ops: u64,
    /// Block-wide barriers.
    pub syncs: u64,
}

impl Counters {
    pub fn add(&mut self, other: &Counters) {
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.dram_transactions += other.dram_transactions;
        self.dram_wide_bytes += other.dram_wide_bytes;
        self.shmem_ops += other.shmem_ops;
        self.alu_ops += other.alu_ops;
        self.syncs += other.syncs;
    }

    /// Total useful DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// Constants converting counters to cycles. Derived from device properties
/// once at construction so the conversion itself is branch-free.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// SIMD width used to convert thread-ops to warp instructions.
    pub warp_size: u64,
    /// Issue cycles per warp instruction.
    pub issue_cpi: f64,
    /// Shared-memory lanes serviced per cycle (bank throughput).
    pub shmem_lanes: f64,
    /// DRAM bytes one SM consumes per cycle.
    pub bytes_per_cycle: f64,
    /// Cycles charged per block-wide barrier.
    pub sync_cost: u64,
    /// Fixed per-CTA cycles (scheduling / prologue).
    pub launch_overhead: u64,
}

impl CostModel {
    pub fn for_props(props: &DeviceProps) -> Self {
        CostModel {
            warp_size: props.warp_size as u64,
            // Kepler-class cores do not sustain one warp instruction per
            // cycle on dependent arithmetic: dependency stalls and low ILP
            // push the effective CPI toward 3.
            issue_cpi: 3.0,
            // Average effective shared-memory lanes after bank conflicts.
            shmem_lanes: 24.0,
            bytes_per_cycle: props.bytes_per_cycle_per_sm(),
            sync_cost: 30,
            launch_overhead: 400,
        }
    }

    /// Cycle estimate for one CTA's accumulated counters.
    pub fn cta_cycles(&self, c: &Counters) -> u64 {
        let compute = (c.alu_ops as f64 / self.warp_size as f64) * self.issue_cpi
            + c.shmem_ops as f64 / self.shmem_lanes;
        let memory = c.dram_transactions as f64 * TX_BYTES as f64 / self.bytes_per_cycle;
        let overlap = compute.max(memory);
        overlap.ceil() as u64 + c.syncs * self.sync_cost + self.launch_overhead
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::for_props(&DeviceProps::default())
    }
}

/// Analytic description of one SpMV launch in some storage format: enough
/// for [`CostModel::predict_spmv`] to price the launch *without running
/// it*. A format advisor derives one of these per candidate format from
/// row-length statistics alone (no conversion, no kernel), then compares
/// predicted cycles. All totals are launch-wide; the model divides by the
/// CTA count itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpmvWorkload {
    /// CTAs the launch would use.
    pub ctas: u64,
    /// Perfectly coalesced payload bytes (matrix entries, pointers,
    /// output stores) for the whole launch.
    pub streamed_bytes: u64,
    /// Data-dependent accesses (the `x` gather, permutation scatters),
    /// priced pessimistically at one transaction each — the same worst
    /// case for every format, so it cancels out of comparisons except
    /// through padding (padded formats gather fewer useful elements per
    /// stored slot, not fewer per nonzero).
    pub gathers: u64,
    /// Arithmetic thread-operations for the whole launch.
    pub alu_ops: u64,
    /// Shared-memory accesses for the whole launch.
    pub shmem_ops: u64,
    /// Block-wide barriers for the whole launch.
    pub syncs: u64,
    /// Additional dependent kernel launches the format needs per execute
    /// (e.g. merge SpMV's carry-update pass); each costs one launch
    /// overhead on the critical path.
    pub extra_launches: u64,
    /// Work of the busiest CTA as a multiple of the mean (≥ 1). Flat
    /// decompositions are 1.0 by construction; row-split formats inherit
    /// the row-length skew here, which is exactly what the makespan
    /// scheduler punishes.
    pub imbalance: f64,
}

impl CostModel {
    /// Predicted device cycles for an SpMV launch described by `w`, with
    /// `concurrent_ctas` CTA slots across the chip (SMs × CTAs per SM).
    /// Mirrors the launch machinery: per-CTA cycles from the mean
    /// counters via the [`CostModel`] formula, one wave per filled slot
    /// set, and the busiest CTA stretching the makespan by `imbalance`.
    pub fn predict_spmv(&self, w: &SpmvWorkload, concurrent_ctas: u64) -> f64 {
        let ctas = w.ctas.max(1) as f64;
        let tx = (w.streamed_bytes.div_ceil(TX_BYTES) + w.gathers) as f64;
        let memory = tx * TX_BYTES as f64 / self.bytes_per_cycle / ctas;
        let compute = (w.alu_ops as f64 / ctas / self.warp_size as f64) * self.issue_cpi
            + w.shmem_ops as f64 / ctas / self.shmem_lanes;
        let per_cta = compute.max(memory)
            + (w.syncs as f64 / ctas) * self.sync_cost as f64
            + self.launch_overhead as f64;
        let waves = (ctas / concurrent_ctas.max(1) as f64).ceil();
        waves * per_cta * w.imbalance.max(1.0)
            + w.extra_launches as f64 * self.launch_overhead as f64
    }
}

/// Number of 128-byte transactions needed for `bytes` of perfectly
/// coalesced traffic.
pub fn coalesced_transactions(bytes: u64) -> u64 {
    bytes.div_ceil(TX_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_accumulates_all_fields() {
        let mut a = Counters {
            dram_read_bytes: 1,
            dram_write_bytes: 2,
            dram_transactions: 3,
            dram_wide_bytes: 7,
            shmem_ops: 4,
            alu_ops: 5,
            syncs: 6,
        };
        a.add(&a.clone());
        assert_eq!(a.dram_read_bytes, 2);
        assert_eq!(a.syncs, 12);
        assert_eq!(a.dram_wide_bytes, 14);
        assert_eq!(a.dram_bytes(), 6);
    }

    #[test]
    fn memory_bound_cta_is_charged_for_transactions() {
        let model = CostModel::default();
        let light_compute = Counters {
            dram_transactions: 1000,
            alu_ops: 32, // one warp instruction
            ..Default::default()
        };
        let cycles = model.cta_cycles(&light_compute);
        let expected_mem = (1000.0 * TX_BYTES as f64 / model.bytes_per_cycle).ceil() as u64;
        assert_eq!(cycles, expected_mem + model.launch_overhead);
    }

    #[test]
    fn compute_bound_cta_is_charged_for_alu() {
        let model = CostModel::default();
        let heavy_compute = Counters {
            alu_ops: 32_000_000,
            dram_transactions: 1,
            ..Default::default()
        };
        let cycles = model.cta_cycles(&heavy_compute);
        assert!(cycles >= 1_000_000, "ALU work should dominate: {cycles}");
    }

    #[test]
    fn predicted_spmv_punishes_imbalance_and_extra_launches() {
        let model = CostModel::default();
        let base = SpmvWorkload {
            ctas: 64,
            streamed_bytes: 1 << 20,
            gathers: 10_000,
            alu_ops: 200_000,
            shmem_ops: 50_000,
            syncs: 128,
            extra_launches: 0,
            imbalance: 1.0,
        };
        let flat = model.predict_spmv(&base, 32);
        let skewed = model.predict_spmv(
            &SpmvWorkload {
                imbalance: 4.0,
                ..base
            },
            32,
        );
        assert!(
            skewed > 3.0 * flat,
            "skew must dominate: {skewed} vs {flat}"
        );
        let chained = model.predict_spmv(
            &SpmvWorkload {
                extra_launches: 1,
                ..base
            },
            32,
        );
        assert_eq!(chained, flat + model.launch_overhead as f64);
    }

    #[test]
    fn predicted_spmv_scales_with_padding_bytes() {
        let model = CostModel::default();
        let lean = SpmvWorkload {
            ctas: 16,
            streamed_bytes: 1 << 22,
            gathers: 10_000,
            alu_ops: 300_000,
            shmem_ops: 0,
            syncs: 0,
            extra_launches: 0,
            imbalance: 1.0,
        };
        let padded = SpmvWorkload {
            streamed_bytes: 4 << 22,
            ..lean
        };
        assert!(model.predict_spmv(&padded, 32) > 2.0 * model.predict_spmv(&lean, 32));
    }

    #[test]
    fn coalesced_transaction_count_rounds_up() {
        assert_eq!(coalesced_transactions(0), 0);
        assert_eq!(coalesced_transactions(1), 1);
        assert_eq!(coalesced_transactions(128), 1);
        assert_eq!(coalesced_transactions(129), 2);
    }
}
