//! Cost counters and the cycle model.
//!
//! Every CTA accumulates a [`Counters`] record while it runs. Primitives in
//! [`crate::block`] and memory helpers on [`crate::Cta`] charge these
//! counters; the [`CostModel`] then turns one CTA's counters into a cycle
//! estimate:
//!
//! ```text
//! compute = (alu_ops / warp_size) * issue_cpi  +  shmem_ops / shmem_lanes
//! memory  = dram_transactions * tx_bytes / bytes_per_cycle_per_sm
//! cycles  = max(compute, memory) + syncs * sync_cost + launch_overhead
//! ```
//!
//! The `max` models latency hiding: a memory-bound CTA overlaps its compute
//! with outstanding loads (the device is throughput-oriented, Garland &
//! Kirk 2010). Barriers and launch overhead are additive because nothing
//! overlaps them.

use crate::device::DeviceProps;

/// Size in bytes of one DRAM transaction (a coalesced 128-byte segment).
pub const TX_BYTES: u64 = 128;

/// Per-CTA event counters. All counts are totals over the CTA's threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Bytes read from global memory (useful payload).
    pub dram_read_bytes: u64,
    /// Bytes written to global memory (useful payload).
    pub dram_write_bytes: u64,
    /// 128-byte DRAM transactions issued (≥ payload/128 when uncoalesced).
    pub dram_transactions: u64,
    /// Payload bytes moved by *wide* accesses (each lane touching a run of
    /// consecutive elements, e.g. a dense column-tile row). Subset of the
    /// read/write byte totals; tracked separately so tiled multi-vector
    /// kernels are priced distinctly from repeated narrow gathers.
    pub dram_wide_bytes: u64,
    /// Shared-memory accesses (one per thread per load/store).
    pub shmem_ops: u64,
    /// Arithmetic/logic thread-operations.
    pub alu_ops: u64,
    /// Block-wide barriers.
    pub syncs: u64,
}

impl Counters {
    pub fn add(&mut self, other: &Counters) {
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.dram_transactions += other.dram_transactions;
        self.dram_wide_bytes += other.dram_wide_bytes;
        self.shmem_ops += other.shmem_ops;
        self.alu_ops += other.alu_ops;
        self.syncs += other.syncs;
    }

    /// Total useful DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// Constants converting counters to cycles. Derived from device properties
/// once at construction so the conversion itself is branch-free.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// SIMD width used to convert thread-ops to warp instructions.
    pub warp_size: u64,
    /// Issue cycles per warp instruction.
    pub issue_cpi: f64,
    /// Shared-memory lanes serviced per cycle (bank throughput).
    pub shmem_lanes: f64,
    /// DRAM bytes one SM consumes per cycle.
    pub bytes_per_cycle: f64,
    /// Cycles charged per block-wide barrier.
    pub sync_cost: u64,
    /// Fixed per-CTA cycles (scheduling / prologue).
    pub launch_overhead: u64,
}

impl CostModel {
    pub fn for_props(props: &DeviceProps) -> Self {
        CostModel {
            warp_size: props.warp_size as u64,
            // Kepler-class cores do not sustain one warp instruction per
            // cycle on dependent arithmetic: dependency stalls and low ILP
            // push the effective CPI toward 3.
            issue_cpi: 3.0,
            // Average effective shared-memory lanes after bank conflicts.
            shmem_lanes: 24.0,
            bytes_per_cycle: props.bytes_per_cycle_per_sm(),
            sync_cost: 30,
            launch_overhead: 400,
        }
    }

    /// Cycle estimate for one CTA's accumulated counters.
    pub fn cta_cycles(&self, c: &Counters) -> u64 {
        let compute = (c.alu_ops as f64 / self.warp_size as f64) * self.issue_cpi
            + c.shmem_ops as f64 / self.shmem_lanes;
        let memory = c.dram_transactions as f64 * TX_BYTES as f64 / self.bytes_per_cycle;
        let overlap = compute.max(memory);
        overlap.ceil() as u64 + c.syncs * self.sync_cost + self.launch_overhead
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::for_props(&DeviceProps::default())
    }
}

/// Number of 128-byte transactions needed for `bytes` of perfectly
/// coalesced traffic.
pub fn coalesced_transactions(bytes: u64) -> u64 {
    bytes.div_ceil(TX_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_accumulates_all_fields() {
        let mut a = Counters {
            dram_read_bytes: 1,
            dram_write_bytes: 2,
            dram_transactions: 3,
            dram_wide_bytes: 7,
            shmem_ops: 4,
            alu_ops: 5,
            syncs: 6,
        };
        a.add(&a.clone());
        assert_eq!(a.dram_read_bytes, 2);
        assert_eq!(a.syncs, 12);
        assert_eq!(a.dram_wide_bytes, 14);
        assert_eq!(a.dram_bytes(), 6);
    }

    #[test]
    fn memory_bound_cta_is_charged_for_transactions() {
        let model = CostModel::default();
        let light_compute = Counters {
            dram_transactions: 1000,
            alu_ops: 32, // one warp instruction
            ..Default::default()
        };
        let cycles = model.cta_cycles(&light_compute);
        let expected_mem = (1000.0 * TX_BYTES as f64 / model.bytes_per_cycle).ceil() as u64;
        assert_eq!(cycles, expected_mem + model.launch_overhead);
    }

    #[test]
    fn compute_bound_cta_is_charged_for_alu() {
        let model = CostModel::default();
        let heavy_compute = Counters {
            alu_ops: 32_000_000,
            dram_transactions: 1,
            ..Default::default()
        };
        let cycles = model.cta_cycles(&heavy_compute);
        assert!(cycles >= 1_000_000, "ALU work should dominate: {cycles}");
    }

    #[test]
    fn coalesced_transaction_count_rounds_up() {
        assert_eq!(coalesced_transactions(0), 0);
        assert_eq!(coalesced_transactions(1), 1);
        assert_eq!(coalesced_transactions(128), 1);
        assert_eq!(coalesced_transactions(129), 2);
    }
}
